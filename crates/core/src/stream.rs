//! Streaming ingestion, incremental score indexes, drift detection, and
//! continuous queries.
//!
//! BlazeIt's motivating deployments (traffic cameras, retail feeds) are *live*
//! streams, and ingest-time processing is where the cost/latency win lives
//! (Focus builds its low-latency story on an ingest-time index; NoScope's
//! amortization argument needs the cascade's work to happen as data arrives).
//! This module turns a registered video into a growing one:
//!
//! * A [`StreamSource`] appends frames to a registered stream's
//!   [`VideoContext`]. The synthetic substrate generates the *full* day
//!   deterministically up front and ingestion reveals successive prefixes
//!   ([`Video::prefix`]), so the frames a query sees never depend on when they
//!   were ingested — which is exactly the property that makes incremental
//!   indexing honest.
//! * Every ingest **incrementally extends** the context's cached score indexes:
//!   only the newly arrived frames are featurized and scored (batched, on the
//!   [`blazeit_nn::parallel`] worker pool), and the new rows are appended to
//!   the cached [`ScoreMatrix`]. Because per-frame scores are
//!   batch-composition invariant, the incremental index is **bit-identical** to
//!   a cold full re-score of the grown video — and already-scored frames are
//!   never charged again. Write-behind keeps the durable
//!   [`IndexStore`](crate::store::IndexStore) consistent with the grown video
//!   (the superseded shorter artifact is replaced).
//! * A **drift monitor** compares the recent window's specialized-score
//!   distribution against the training-time (held-out calibration)
//!   distribution with a two-sample Kolmogorov–Smirnov statistic, cost-modeled
//!   on the shared [`SimClock`](blazeit_detect::SimClock) through the
//!   cheap-filter path. Past a threshold it schedules a **background retrain**
//!   (run via [`blazeit_nn::parallel::par_run_caught`], so a panicking retrain
//!   degrades instead of crashing): the recent window is labeled
//!   with the full detector, a fresh specialized network is trained on those
//!   labels, the ingested prefix is re-scored, and the new `(network, index)`
//!   pair is **swapped in atomically** — a subscribed query snapshots
//!   `(network, scores, generation)` under one lock and therefore always
//!   answers from exactly one model generation.
//! * [`Session::subscribe`] turns a FrameQL `FCOUNT`/`COUNT` aggregate —
//!   optionally with `WINDOW n FRAMES` / `EVERY n FRAMES` clauses — into a
//!   [`Subscription`] yielding one [`StreamUpdate`] per tick, with an honest
//!   confidence interval derived from held-out calibration residuals. Ticks
//!   read the incremental index and charge **zero** detection and zero
//!   redundant specialized inference.
//!
//! `EXPLAIN` renders the stream state (frames ingested, index freshness and
//! generation, last drift score, refresh pending/running) for any query planned
//! against a streaming context; see
//! [`StreamStatus`] and [`VideoPlan::stream`](crate::plan::VideoPlan::stream).

use crate::catalog::Catalog;
use crate::context::{LiveIndex, VideoContext};
use crate::fault::{self, RetrainHealth};
use crate::lockorder::{lock_ordered, RANK_MONITOR};
use crate::obs;
use crate::session::Session;
use crate::stats::normal_critical_value;
use crate::sync::Mutex;
use crate::{BlazeItError, Result};
use blazeit_detect::clock::CostCategory;
use blazeit_detect::{CountVector, ObjectDetector};
use blazeit_frameql::parse_query;
use blazeit_frameql::query::{analyze, AggregateKind, QueryClass};
use blazeit_nn::parallel::par_run_caught;
use blazeit_nn::specialized::SpecializedNN;
use blazeit_nn::ScoreMatrix;
use blazeit_videostore::{ObjectClass, Video};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Default tick interval (frames) for a subscription whose query names neither
/// `EVERY` nor `WINDOW`.
pub const DEFAULT_TICK_FRAMES: u64 = 512;

/// Configuration of a stream's drift monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Width (frames) of the recent window whose score distribution is
    /// compared against the training-time reference.
    pub window: u64,
    /// Run the two-sample check each time this many further frames have been
    /// ingested since the last check.
    pub check_every: u64,
    /// Kolmogorov–Smirnov statistic above which a background refresh is
    /// scheduled. `f64::INFINITY` disables drift-triggered refreshes.
    pub threshold: f64,
    /// Stride (frames) at which a refresh labels the recent window with the
    /// full object detector (charged, like any detector use).
    pub retrain_stride: u64,
    /// Never check before this many frames have been ingested (a tiny prefix
    /// has too little signal for a two-sample statistic).
    pub min_history: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 600,
            check_every: 300,
            threshold: 0.25,
            retrain_stride: 3,
            min_history: 600,
        }
    }
}

impl DriftConfig {
    /// A monitor that never triggers (incremental indexing only).
    pub fn disabled() -> DriftConfig {
        DriftConfig { threshold: f64::INFINITY, ..DriftConfig::default() }
    }
}

/// Where a head set's drift-triggered refresh stands (rendered by `EXPLAIN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefreshState {
    /// No refresh has been scheduled.
    Idle,
    /// Drift crossed the threshold; the retrain runs at the next ingest.
    Pending,
    /// The background retrain is executing right now.
    Running,
    /// A refresh completed and swapped in the given model generation.
    Completed {
        /// The model generation the refresh swapped in.
        generation: u64,
    },
    /// The last refresh attempt failed (task error or panic). The context
    /// keeps answering from the given generation and the drift monitor is
    /// re-armed with exponential backoff; see
    /// [`HealthReport::retrain`](crate::HealthReport::retrain).
    Failed {
        /// The model generation the context is pinned at.
        generation: u64,
    },
}

impl RefreshState {
    /// The label `EXPLAIN` renders.
    pub fn label(&self) -> String {
        match self {
            RefreshState::Idle => "idle".to_string(),
            RefreshState::Pending => "pending".to_string(),
            RefreshState::Running => "running".to_string(),
            RefreshState::Completed { generation } => {
                format!("completed (generation {generation})")
            }
            RefreshState::Failed { generation } => {
                format!("failed (generation {generation} kept)")
            }
        }
    }
}

/// A streaming context's observable state for one head set, as `EXPLAIN`
/// renders it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStatus {
    /// Frames ingested so far (the current video length).
    pub ingested: u64,
    /// Total frames the stream will eventually deliver.
    pub capacity: u64,
    /// Frames covered by the live score index for the planned heads (`None`
    /// when no index has been built yet). By construction this equals
    /// `ingested` whenever an index exists — ingestion extends every live
    /// index under the same lock that swaps the video.
    pub index_frames: Option<u64>,
    /// Model generation of the live index (0 = trained from the labeled set).
    pub generation: u64,
    /// The drift monitor's most recent two-sample statistic, if it has run.
    pub drift_score: Option<f64>,
    /// The configured drift threshold.
    pub drift_threshold: f64,
    /// Where the head set's background refresh stands.
    pub refresh: RefreshState,
}

/// What one [`StreamSource::advance`] call did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Ingested length before the call.
    pub from: u64,
    /// Ingested length after the call (clamped to the stream's capacity).
    pub to: u64,
    /// Live score indexes that were incrementally extended (one per cached
    /// head set).
    pub indexes_extended: usize,
    /// Whether the drift monitor ran its two-sample check during this ingest.
    pub drift_checked: bool,
    /// Background refreshes that completed during this ingest.
    pub refreshes: Vec<RefreshReport>,
    /// Background refreshes that failed during this ingest. Each failure kept
    /// the previous model generation, re-armed the drift monitor with
    /// exponential backoff, and was recorded in the context's
    /// [`HealthState`](crate::HealthState) — it never fails the ingest itself.
    pub refresh_failures: usize,
}

impl IngestReport {
    /// Frames appended by this call.
    pub fn appended(&self) -> u64 {
        self.to - self.from
    }
}

/// One completed drift-triggered refresh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefreshReport {
    /// The head set that was retrained, `(class, max_count)` per head.
    pub heads: Vec<(ObjectClass, usize)>,
    /// The model generation swapped in.
    pub new_generation: u64,
    /// The drift score that triggered the refresh.
    pub drift_score: f64,
    /// Window frames labeled with the full detector for retraining.
    pub labeled_frames: usize,
}

/// One update of a subscribed continuous query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamUpdate {
    /// The ingested-frame position this tick fired at (a multiple of the
    /// subscription's `EVERY` interval).
    pub tick: u64,
    /// The `[lo, hi)` frame range the update aggregates over.
    pub range: (u64, u64),
    /// The aggregate estimate (`FCOUNT`: per-frame mean; `COUNT`: window
    /// total), bias-corrected with the held-out calibration residual.
    pub value: f64,
    /// Standard error of the estimate, from held-out calibration residuals
    /// (window-mean noise plus calibration-shift uncertainty).
    pub standard_error: f64,
    /// The `confidence`-level interval `value ± z·SE`.
    pub ci: (f64, f64),
    /// The confidence level the interval was built at.
    pub confidence: f64,
    /// The model generation this update was answered from. Every value in one
    /// update comes from exactly this generation — the snapshot is taken under
    /// one lock, so a concurrent drift refresh can never mix generations
    /// within a tick.
    pub generation: u64,
    /// Content fingerprint of the network that produced the scores (two
    /// updates share a fingerprint iff they used bit-identical weights).
    pub model_fingerprint: u64,
}

// ---------------------------------------------------------------------------------
// Internal state.
// ---------------------------------------------------------------------------------

/// Per-context streaming state: the full generated day plus the drift monitor.
pub(crate) struct StreamState {
    /// The full-day video; the context's current video is always a prefix view
    /// of this, so ingested frames are bit-identical to a cold registration of
    /// the grown video.
    pub(crate) capacity: Arc<Video>,
    /// Drift-monitor configuration.
    pub(crate) drift: DriftConfig,
    /// Per-head-key drift bookkeeping. Lock order: this lock is acquired
    /// before `live_index` (see [`VideoContext`]).
    pub(crate) monitor: Mutex<HashMap<String, DriftEntry>>,
}

impl StreamState {
    pub(crate) fn new(capacity: Arc<Video>, drift: DriftConfig) -> StreamState {
        StreamState {
            capacity,
            drift,
            monitor: Mutex::ranked(crate::lockorder::RANK_MONITOR, "monitor", HashMap::new()),
        }
    }
}

/// Drift bookkeeping for one head set.
pub(crate) struct DriftEntry {
    /// The training-time reference sample: per head, the specialized expected
    /// counts over the held-out calibration frames (or, after a refresh, over
    /// the refresh's training window).
    reference: Vec<Vec<f64>>,
    /// Ingested length at the last two-sample check.
    last_check: u64,
    /// The last check's statistic.
    last_score: Option<f64>,
    /// Refresh state machine.
    refresh: RefreshState,
    /// Consecutive failed refresh attempts for this head set.
    failures: u32,
    /// Ingested-frame position before which the monitor must not re-check
    /// (armed by a failed refresh with exponential backoff; 0 = unblocked).
    blocked_until: u64,
}

/// A consistent `(video, network, scores, generation)` snapshot of one head
/// set's live index, taken under a single lock acquisition.
pub(crate) struct StreamSnapshot {
    pub(crate) video: Arc<Video>,
    pub(crate) nn: Arc<SpecializedNN>,
    pub(crate) scores: Arc<ScoreMatrix>,
    pub(crate) generation: u64,
}

/// The two-sample Kolmogorov–Smirnov statistic `sup |F_a - F_b|`.
fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut a: Vec<f64> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup = 0.0f64;
    while i < a.len() && j < b.len() {
        // blazeit-lint: allow(panic-site::index) -- two-pointer merge: the enclosing while
        // guarantees i < a.len() and j < b.len()
        if a[i] < b[j] {
            i += 1;
        // blazeit-lint: allow(panic-site::index) -- two-pointer merge: the enclosing while
        // guarantees i < a.len() and j < b.len()
        } else if b[j] < a[i] {
            j += 1;
        } else {
            // Tied values must advance both empirical CDFs together, or
            // identical samples would read as drifted.
            // blazeit-lint: allow(panic-site::index) -- the loop guard above validated both cursors
            // before this read
            let v = a[i];
            // blazeit-lint: allow(panic-site::index) -- the && short-circuit re-checks i < a.len()
            // before indexing
            while i < a.len() && a[i] == v {
                i += 1;
            }
            // blazeit-lint: allow(panic-site::index) -- the && short-circuit re-checks j < b.len()
            // before indexing
            while j < b.len() && b[j] == v {
                j += 1;
            }
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        sup = sup.max((fa - fb).abs());
    }
    sup
}

/// What one background refresh task produced (before the atomic swap).
struct RefreshOutcome {
    key: String,
    heads: Vec<(ObjectClass, usize)>,
    nn: Arc<SpecializedNN>,
    scores: Arc<ScoreMatrix>,
    reference: Vec<Vec<f64>>,
    labeled_frames: usize,
    drift_score: f64,
}

// ---------------------------------------------------------------------------------
// VideoContext streaming surface.
// ---------------------------------------------------------------------------------

impl VideoContext {
    fn stream_state(&self) -> Result<&StreamState> {
        self.stream.as_ref().ok_or_else(|| {
            BlazeItError::Unsupported(format!(
                "video '{}' is not a stream; register it with Catalog::register_stream",
                self.video().name()
            ))
        })
    }

    /// The stream's observable state for a head set, or `None` for ordinary
    /// (non-streaming) registrations. Free of simulated cost — this is what
    /// `EXPLAIN` renders.
    pub fn stream_status(&self, heads: &[(ObjectClass, usize)]) -> Option<StreamStatus> {
        let state = self.stream.as_ref()?;
        let key = Self::head_key(&Self::normalized_heads(heads));
        let monitor = lock_ordered(RANK_MONITOR, "monitor", &state.monitor);
        let index = self.lock_live_index();
        let video = self.video();
        let entry = index.get(&key);
        let drift = monitor.get(&key);
        Some(StreamStatus {
            ingested: video.len(),
            capacity: state.capacity.len(),
            index_frames: entry.map(|e| e.scores.num_frames() as u64),
            generation: entry.map_or(0, |e| e.generation),
            drift_score: drift.and_then(|d| d.last_score),
            drift_threshold: state.drift.threshold,
            refresh: drift.map_or(RefreshState::Idle, |d| d.refresh),
        })
    }

    /// Grows the stream to `target` frames (clamped to capacity), extending
    /// every cached live score index incrementally: only the new frames are
    /// scored (batched, on the worker pool), and the new rows are appended.
    /// Returns `(from, to, indexes_extended)`.
    fn ingest_to(&self, target: u64) -> Result<(u64, u64, usize)> {
        let state = self.stream_state()?;
        // Failpoint: a faulted frame source fails the ingest *before* any
        // state changes, so the typed error honestly promises "stream
        // unchanged — just retry advance".
        if let Some(injected) = fault::inject(fault::FaultSite::StreamIngest) {
            let message = match injected {
                fault::InjectedFault::TransientIo => {
                    "injected fault: frame source would block (transient)"
                }
                _ => "injected fault: frame source I/O error",
            };
            return Err(BlazeItError::Ingest {
                video: self.video().name().to_string(),
                message: message.to_string(),
            });
        }
        // Holding `live_index` across scoring and the video swap is the
        // atomicity story: a reader that acquires this lock (score_index,
        // stream_snapshot) always sees indexes covering exactly the current
        // video, and two concurrent ingests cannot double-score a frame.
        let mut index = self.lock_live_index();
        let current = self.video();
        let from = current.len();
        let to = target.min(state.capacity.len());
        if to <= from {
            return Ok((from, from, 0));
        }
        let grown = Arc::new(state.capacity.prefix(to)?);
        let new_frames: Vec<u64> = (from..to).collect();
        // Phase 1 — score every tail first, publishing nothing. A failure here
        // leaves every index and the video exactly as they were (all-or-
        // nothing), so the "index covers exactly the current video" invariant
        // can never be half-broken across head sets.
        let mut grown_entries: Vec<(String, Arc<ScoreMatrix>)> = Vec::with_capacity(index.len());
        for (key, entry) in index.iter() {
            // Incremental scoring: charge exactly the new frames, never the
            // already-scored prefix. Row-wise this is bit-identical to a cold
            // `score_video(&grown)` because scores are per-frame pure.
            let tail = entry.nn.score_batch(&grown, &new_frames)?;
            grown_entries.push((key.clone(), Arc::new(entry.scores.extended(&tail)?)));
        }
        // Phase 2 — publish: swap the grown indexes in, write behind, then
        // swap the video (still under the `live_index` lock).
        let extended = grown_entries.len();
        for (key, scores) in grown_entries {
            let Some(entry) = index.get_mut(&key) else {
                return Err(BlazeItError::Internal(format!(
                    "live index entry '{key}' vanished while its lock was held"
                )));
            };
            // Write-behind: persist the grown index under the grown video's
            // key and retire the superseded shorter artifact, so disk stays
            // consistent with the stream. A failing store degrades to
            // in-memory indexing (recorded in [`HealthState`]) rather than
            // failing ingestion.
            let new_key = Self::score_key(&grown, to as usize, &entry.nn);
            let old_key = Self::score_key(&current, from as usize, &entry.nn);
            self.store_op("store grown score index", |store, dir| {
                store.store_scores(dir, &new_key, &scores)
            });
            self.store_op("retire superseded score index", |store, dir| {
                store.remove_scores(dir, &old_key)
            });
            entry.scores = scores;
        }
        *self.lock_video() = grown;
        // New frames are observable: invalidate serving-layer cache entries
        // keyed on the previous generation.
        self.bump_data_generation();
        obs::metrics().stream_frames_ingested.add(to - from);
        Ok((from, to, extended))
    }

    /// Runs the drift monitor's two-sample check for every monitored head set
    /// that is due. Returns whether any check ran. Cost-modeled on the shared
    /// clock through the cheap-filter path (the statistic touches
    /// `window + reference` score values per head).
    fn check_drift(&self) -> Result<bool> {
        let state = self.stream_state()?;
        let drift = state.drift;
        if !drift.threshold.is_finite() {
            return Ok(false);
        }
        let mut monitor = lock_ordered(RANK_MONITOR, "monitor", &state.monitor);
        let index = self.lock_live_index();
        let video = self.video();
        let ingested = video.len();
        let mut any = false;
        for (key, entry) in index.iter() {
            let Some(ent) = monitor.get_mut(key) else { continue };
            if matches!(ent.refresh, RefreshState::Pending | RefreshState::Running) {
                continue;
            }
            // A failed refresh arms a backoff window: the monitor stays quiet
            // (and the current generation keeps answering) until it elapses.
            if ingested < ent.blocked_until {
                continue;
            }
            if ingested < drift.min_history.max(drift.window)
                || ingested < ent.last_check + drift.check_every
            {
                continue;
            }
            let lo = (ingested - drift.window) as usize;
            let mut score = 0.0f64;
            let mut touched = 0usize;
            for (h, reference) in ent.reference.iter().enumerate() {
                let recent: Vec<f64> =
                    (lo..ingested as usize).map(|f| entry.scores.expected_count(f, h)).collect();
                touched += recent.len() + reference.len();
                score = score.max(ks_statistic(&recent, reference));
            }
            self.clock()
                .charge(CostCategory::Filter, touched as f64 * self.config().cost.filter_cost());
            ent.last_check = ingested;
            ent.last_score = Some(score);
            obs::metrics().stream_drift_checks.inc();
            obs::metrics().stream_drift_score.set(score);
            any = true;
            if score > drift.threshold {
                ent.refresh = RefreshState::Pending;
            }
        }
        Ok(any)
    }

    /// Executes every pending drift refresh as a background task on the worker
    /// pool ([`par_run_caught`]): label the recent window with the full
    /// detector, train a fresh specialized network, re-score the ingested
    /// prefix, then atomically swap the new `(network, index)` pair in (and
    /// heal the durable store). In-flight subscribed queries keep answering
    /// from their snapshot of the previous generation until the swap
    /// completes.
    ///
    /// A refresh task that errors **or panics** never fails the ingest:
    /// the head set keeps its current `(network, index, generation)`, the
    /// monitor is re-armed with exponential backoff, and the failure is
    /// recorded in the context's [`HealthState`]. Returns the completed
    /// refresh reports plus the number of failed attempts.
    fn run_pending_refreshes(&self) -> Result<(Vec<RefreshReport>, usize)> {
        let state = self.stream_state()?;
        let drift = state.drift;
        // Claim pending refreshes (Pending → Running) and snapshot what each
        // task needs, so the heavy work runs without holding any lock.
        let pending: Vec<(String, Arc<SpecializedNN>, f64)> = {
            let mut monitor = lock_ordered(RANK_MONITOR, "monitor", &state.monitor);
            let index = self.lock_live_index();
            monitor
                .iter_mut()
                .filter(|(_, ent)| ent.refresh == RefreshState::Pending)
                .filter_map(|(key, ent)| {
                    let entry = index.get(key)?;
                    ent.refresh = RefreshState::Running;
                    Some((key.clone(), Arc::clone(&entry.nn), ent.last_score.unwrap_or(0.0)))
                })
                .collect()
        };
        if pending.is_empty() {
            return Ok((Vec::new(), 0));
        }
        let video = self.video();
        let tasks: Vec<Box<dyn FnOnce() -> Result<RefreshOutcome> + Send + '_>> = pending
            .iter()
            .map(|(key, old_nn, drift_score)| {
                let video = Arc::clone(&video);
                let task: Box<dyn FnOnce() -> Result<RefreshOutcome> + Send + '_> =
                    Box::new(move || {
                        // Failpoint: a faulted retrain either errors (typed)
                        // or panics (caught at the task boundary) — both paths
                        // must leave the head set on its current generation.
                        if let Some(injected) = fault::inject(fault::FaultSite::Retrain) {
                            if injected == fault::InjectedFault::Panic {
                                // blazeit-lint: allow(panic-site) -- deliberate chaos
                                // panic: the retrain task boundary's catch_unwind is
                                // exactly what this failpoint exercises.
                                panic!("injected fault: retrain panic");
                            }
                            return Err(BlazeItError::Internal(
                                "injected fault: retrain failed".into(),
                            ));
                        }
                        let heads: Vec<(ObjectClass, usize)> =
                            old_nn.heads().iter().map(|h| (h.class, h.max_count)).collect();
                        let lo = video.len().saturating_sub(drift.window);
                        let frames: Vec<u64> = (lo..video.len())
                            .step_by(drift.retrain_stride.max(1) as usize)
                            .collect();
                        // Label the drifted window with the full detector
                        // (charged — refreshing is real work, done off the
                        // query path).
                        let labels: Vec<CountVector> = self
                            .detector()
                            .detect_batch(&video, &frames)
                            .iter()
                            .map(|dets| CountVector::from_detections(dets))
                            .collect();
                        let spec_config = self.context_spec_config(&heads);
                        let (nn, _report) = SpecializedNN::train(
                            spec_config,
                            &video,
                            &frames,
                            &labels,
                            Arc::clone(self.clock()),
                        )?;
                        let nn = Arc::new(nn);
                        // Re-score the whole ingested prefix with the new
                        // weights: a new generation means a new index.
                        let scores = Arc::new(nn.score_video(&video)?);
                        // The new training-time reference: the new model's own
                        // scores over its training window, so the monitor
                        // compares future windows against what the refreshed
                        // model was fitted to.
                        let reference: Vec<Vec<f64>> = (0..scores.num_heads())
                            .map(|h| {
                                (lo as usize..video.len() as usize)
                                    .map(|f| scores.expected_count(f, h))
                                    .collect()
                            })
                            .collect();
                        Ok(RefreshOutcome {
                            key: key.clone(),
                            heads,
                            nn,
                            scores,
                            reference,
                            labeled_frames: frames.len(),
                            drift_score: *drift_score,
                        })
                    });
                task
            })
            .collect();
        let outcomes = par_run_caught(tasks);

        // Atomic swap: monitor → live_index → nn_cache, all held together, so
        // no reader can observe a network without its matching index.
        let mut reports = Vec::new();
        let mut failures = 0usize;
        let mut monitor = lock_ordered(RANK_MONITOR, "monitor", &state.monitor);
        let mut index = self.lock_live_index();
        let mut nns = self.lock_nn_cache();
        for ((key, _, _), outcome) in pending.iter().zip(outcomes) {
            // Flatten the task's panic-or-error envelope: a panic becomes the
            // typed [`BlazeItError::TaskPanicked`] and joins the same
            // kept-generation failure path as an ordinary task error.
            let flattened = match outcome {
                Ok(task_result) => task_result,
                Err(caught) => Err(BlazeItError::TaskPanicked {
                    task: format!("drift refresh for head set '{key}'"),
                    message: caught.message,
                }),
            };
            let applied = flattened.and_then(|outcome| {
                let current = self.video();
                // Defensive: if another driver grew the stream while the
                // retrain ran, extend the new index to cover it before
                // publishing.
                let scores = if (outcome.scores.num_frames() as u64) < current.len() {
                    let missing: Vec<u64> =
                        (outcome.scores.num_frames() as u64..current.len()).collect();
                    let tail = outcome.nn.score_batch(&current, &missing)?;
                    Arc::new(outcome.scores.extended(&tail)?)
                } else {
                    outcome.scores
                };
                let generation = index.get(&outcome.key).map_or(0, |e| e.generation) + 1;
                // Heal the store: retire the old generation's index artifact,
                // persist the new one, and record the refreshed network under
                // an honest refresh key (its training identity is the stream
                // window, not the labeled set, so it must never be stored
                // under the labeled-set key). All write-behind: a failing
                // store is recorded in [`HealthState`], never fails the swap.
                if let Some(old) = index.get(&outcome.key) {
                    let old_key = Self::score_key(&current, current.len() as usize, &old.nn);
                    self.store_op("retire pre-refresh score index", |store, dir| {
                        store.remove_scores(dir, &old_key)
                    });
                }
                let new_key = Self::score_key(&current, current.len() as usize, &outcome.nn);
                self.store_op("store refreshed score index", |store, dir| {
                    store.store_scores(dir, &new_key, &scores)
                });
                let nn_key = format!(
                    "nnrefresh#{}#day{}#vseed{}#upto{}#window{}#stride{}#gen{}#{}",
                    current.name(),
                    current.config().day,
                    current.config().seed,
                    current.len(),
                    drift.window,
                    drift.retrain_stride,
                    generation,
                    Self::head_key(&outcome.heads),
                );
                self.store_op("store refreshed nn", |store, dir| {
                    store.store_network(dir, &nn_key, &outcome.nn)
                });
                nns.insert(outcome.key.clone(), Arc::clone(&outcome.nn));
                index.insert(outcome.key.clone(), LiveIndex { nn: outcome.nn, scores, generation });
                if let Some(ent) = monitor.get_mut(&outcome.key) {
                    ent.reference = outcome.reference;
                    ent.refresh = RefreshState::Completed { generation };
                    ent.failures = 0;
                    ent.blocked_until = 0;
                }
                Ok(RefreshReport {
                    heads: outcome.heads,
                    new_generation: generation,
                    drift_score: outcome.drift_score,
                    labeled_frames: outcome.labeled_frames,
                })
            });
            match applied {
                Ok(report) => {
                    obs::metrics().stream_retrain_completed.inc();
                    self.health().clear_retrain_failure();
                    // A new model generation answers differently: cached
                    // results keyed on the old data generation must miss.
                    self.bump_data_generation();
                    reports.push(report);
                }
                Err(e) => {
                    obs::metrics().stream_retrain_failed.inc();
                    // Graceful degradation: the head set keeps its current
                    // `(network, index, generation)` — subscriptions and
                    // queries keep answering bit-exactly from it — and the
                    // monitor re-arms after an exponentially growing window,
                    // so a persistently failing retrain cannot spin. A
                    // failure must never strand a head set in Running.
                    failures += 1;
                    let ingested = self.video().len();
                    let generation = index.get(key).map_or(0, |e| e.generation);
                    if let Some(ent) = monitor.get_mut(key) {
                        ent.failures = ent.failures.saturating_add(1);
                        let backoff = drift
                            .check_every
                            .max(1)
                            .saturating_mul(1u64 << u64::from((ent.failures - 1).min(16)));
                        ent.blocked_until = ingested.saturating_add(backoff);
                        ent.refresh = RefreshState::Failed { generation };
                        self.health().record_retrain_failure(RetrainHealth {
                            generation,
                            failures: ent.failures,
                            backoff_frames: backoff,
                            resume_at: ent.blocked_until,
                            last_error: e.to_string(),
                        });
                    }
                }
            }
        }
        Ok((reports, failures))
    }

    /// Ensures a live index (and drift reference) exists for `heads`: trains or
    /// loads the specialized network, scores the current prefix once, builds
    /// the held-out calibration index, and seeds the drift monitor's
    /// training-time reference distribution. Later ingests keep the index
    /// fresh incrementally.
    pub(crate) fn ensure_stream_index(&self, heads: &[(ObjectClass, usize)]) -> Result<()> {
        let state = self.stream_state()?;
        let normalized = Self::normalized_heads(heads);
        let nn = self.specialized_for(&normalized)?;
        let _live = self.score_index(&nn)?;
        let heldout = self.heldout_score_index(&nn)?;
        let key = Self::head_key(&normalized);
        let mut monitor = lock_ordered(RANK_MONITOR, "monitor", &state.monitor);
        monitor.entry(key).or_insert_with(|| DriftEntry {
            reference: (0..heldout.num_heads())
                .map(|h| (0..heldout.num_frames()).map(|f| heldout.expected_count(f, h)).collect())
                .collect(),
            last_check: 0,
            last_score: None,
            refresh: RefreshState::Idle,
            failures: 0,
            blocked_until: 0,
        });
        Ok(())
    }

    /// A consistent `(video, network, scores, generation)` snapshot for
    /// `heads`, taken under one lock acquisition — the read primitive of
    /// subscriptions.
    pub(crate) fn stream_snapshot(&self, heads: &[(ObjectClass, usize)]) -> Result<StreamSnapshot> {
        let key = Self::head_key(&Self::normalized_heads(heads));
        let index = self.lock_live_index();
        let video = self.video();
        let entry = index.get(&key).ok_or_else(|| {
            BlazeItError::Internal(
                "no live score index for a subscribed head set (subscribe builds one)".into(),
            )
        })?;
        debug_assert_eq!(entry.scores.num_frames() as u64, video.len());
        Ok(StreamSnapshot {
            video,
            nn: Arc::clone(&entry.nn),
            scores: Arc::clone(&entry.scores),
            generation: entry.generation,
        })
    }
}

// ---------------------------------------------------------------------------------
// StreamSource.
// ---------------------------------------------------------------------------------

/// A handle that drives ingestion of one registered stream.
///
/// Obtained from [`Catalog::stream`]; the streaming state itself lives on the
/// [`VideoContext`], so any number of handles (and concurrent subscribed
/// queries) may coexist.
#[derive(Debug, Clone)]
pub struct StreamSource {
    ctx: Arc<VideoContext>,
    /// The stream's total frame capacity, cached at construction (the stream
    /// state is immutable for the context's lifetime), so accessors never
    /// have to re-validate that the context is a stream.
    capacity: u64,
}

impl StreamSource {
    pub(crate) fn new(ctx: Arc<VideoContext>) -> Result<StreamSource> {
        let capacity = ctx.stream_state()?.capacity.len();
        Ok(StreamSource { ctx, capacity })
    }

    /// The stream's video context.
    pub fn context(&self) -> &VideoContext {
        self.ctx.as_ref()
    }

    /// Frames ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ctx.video().len()
    }

    /// Total frames the stream will eventually deliver.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames not yet ingested.
    pub fn remaining(&self) -> u64 {
        self.capacity() - self.ingested()
    }

    /// Whether every frame has been ingested.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Ingests up to `frames` further frames (clamped to capacity): extends
    /// every live score index incrementally, runs the drift monitor, and
    /// executes any refresh it scheduled as a background task on the worker
    /// pool. See [`IngestReport`].
    pub fn advance(&self, frames: u64) -> Result<IngestReport> {
        self.advance_to(self.ingested().saturating_add(frames))
    }

    /// Like [`StreamSource::advance`], to an absolute ingested length.
    pub fn advance_to(&self, target: u64) -> Result<IngestReport> {
        let (from, to, indexes_extended) = self.ctx.ingest_to(target)?;
        let drift_checked = self.ctx.check_drift()?;
        let (refreshes, refresh_failures) = self.ctx.run_pending_refreshes()?;
        Ok(IngestReport { from, to, indexes_extended, drift_checked, refreshes, refresh_failures })
    }
}

impl Catalog {
    /// A driving handle for a registered stream (see
    /// [`Catalog::register_stream`]). Fails with
    /// [`BlazeItError::Unsupported`] when the named video is an ordinary,
    /// fixed-length registration.
    pub fn stream(&self, name: &str) -> Result<StreamSource> {
        StreamSource::new(self.context(name)?)
    }
}

// ---------------------------------------------------------------------------------
// Subscriptions.
// ---------------------------------------------------------------------------------

/// A subscribed continuous query over one registered stream.
///
/// Created with [`Session::subscribe`]; [`Subscription::poll`] yields one
/// [`StreamUpdate`] per elapsed tick. Polling reads the incremental score
/// index — it charges zero detection and zero redundant specialized inference
/// for already-scored frames (the only inference a poll can ever charge is the
/// one-time held-out calibration of a freshly swapped-in model generation).
#[derive(Debug)]
pub struct Subscription {
    ctx: Arc<VideoContext>,
    sql: String,
    class: ObjectClass,
    heads: Vec<(ObjectClass, usize)>,
    kind: AggregateKind,
    window: Option<u64>,
    every: u64,
    confidence: f64,
    next_tick: u64,
    calibration: Option<(u64, Calibration)>,
}

/// Held-out calibration residual statistics for one model generation.
#[derive(Debug)]
struct Calibration {
    mean_residual: f64,
    residual_variance: f64,
    n: usize,
}

impl<'a> Session<'a> {
    /// Subscribes a FrameQL aggregate to a registered stream, returning a
    /// [`Subscription`] that yields incremental updates as frames are
    /// ingested.
    ///
    /// The query must be a `FCOUNT(*)` / `COUNT(*)` aggregate over exactly one
    /// class of exactly one registered *stream* (see
    /// [`Catalog::register_stream`]). `WINDOW n FRAMES` bounds each update to
    /// the most recent `n` frames (default: everything ingested so far);
    /// `EVERY n FRAMES` sets the tick interval (default: the window width,
    /// else [`DEFAULT_TICK_FRAMES`]). Ticks fire at ingested-frame positions
    /// that are multiples of the interval.
    ///
    /// Subscribing ensures the stream's live index exists: the specialized
    /// network is trained (or loaded from the index store) and the current
    /// prefix is scored once — the only time the subscription ever pays
    /// full-prefix inference. From then on, ingestion extends the index
    /// incrementally and every poll answers from it for free.
    pub fn subscribe(&self, sql: &str) -> Result<Subscription> {
        let query = parse_query(sql)?;
        if query.explain {
            return Err(BlazeItError::Unsupported(
                "EXPLAIN is a one-shot statement; prepare() renders a stream's state".into(),
            ));
        }
        let Some(name) = query.from.as_single() else {
            return Err(BlazeItError::Unsupported(
                "a continuous query subscribes to exactly one stream (multi-video \
                 FROM clauses are one-shot only)"
                    .into(),
            ));
        };
        let ctx = self.catalog().context(name)?;
        let info = analyze(&query, &ctx.udfs())?;
        let QueryClass::Aggregate { kind } = &info.class else {
            return Err(BlazeItError::Unsupported(
                "only FCOUNT/COUNT aggregates can be subscribed (scrubbing and \
                 selection are one-shot queries)"
                    .into(),
            ));
        };
        if matches!(kind, AggregateKind::CountDistinct(_)) {
            return Err(BlazeItError::Unsupported(
                "COUNT(DISTINCT ...) requires exact entity resolution and cannot \
                 be subscribed"
                    .into(),
            ));
        }
        let Some(class) = info.single_class() else {
            return Err(BlazeItError::Unsupported(
                "a continuous aggregate needs exactly one class predicate \
                 (e.g. WHERE class = 'car')"
                    .into(),
            ));
        };
        let heads = vec![(class, ctx.default_max_count(class, 1))];
        ctx.ensure_stream_index(&heads)?;
        let every = info.every.or(info.window).unwrap_or(DEFAULT_TICK_FRAMES).max(1);
        let start = ctx.video().len();
        let next_tick = (start / every + 1) * every;
        Ok(Subscription {
            ctx,
            sql: sql.to_string(),
            class,
            heads,
            kind: kind.clone(),
            window: info.window,
            every,
            confidence: info.confidence.unwrap_or(0.95),
            next_tick,
            calibration: None,
        })
    }
}

impl Subscription {
    /// The subscribed query text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The stream context this subscription reads.
    pub fn context(&self) -> &VideoContext {
        self.ctx.as_ref()
    }

    /// The tick interval in frames.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// The window width in frames (`None` = everything ingested so far).
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// The next ingested-frame position that will produce an update.
    pub fn next_tick(&self) -> u64 {
        self.next_tick
    }

    /// Yields one [`StreamUpdate`] per tick that has elapsed since the last
    /// poll (empty when the stream has not grown past the next tick yet).
    ///
    /// Each update is computed from a single consistent snapshot of the live
    /// index — one model generation per tick, even while a drift refresh swaps
    /// generations concurrently.
    pub fn poll(&mut self) -> Result<Vec<StreamUpdate>> {
        let mut updates = Vec::new();
        loop {
            let snap = self.ctx.stream_snapshot(&self.heads)?;
            if self.next_tick > snap.video.len() {
                break;
            }
            let tick = self.next_tick;
            let lo = self.window.map_or(0, |w| tick.saturating_sub(w));
            let head = snap.nn.head_index(self.class).ok_or_else(|| {
                BlazeItError::Internal(format!("live index lost the head for {}", self.class))
            })?;
            let n_window = (tick - lo) as usize;
            let pred_mean = (lo as usize..tick as usize)
                .map(|f| snap.scores.expected_count(f, head))
                .sum::<f64>()
                / n_window.max(1) as f64;
            let cal = self.calibration_for(&snap)?;
            let mut value = pred_mean + cal.mean_residual;
            let mut se = (cal.residual_variance / n_window.max(1) as f64
                + cal.residual_variance / cal.n.max(1) as f64)
                .sqrt();
            if matches!(self.kind, AggregateKind::Count) {
                value *= n_window as f64;
                se *= n_window as f64;
            }
            let z = normal_critical_value(self.confidence);
            let generation = snap.generation;
            let model_fingerprint = snap.nn.weights_fingerprint();
            updates.push(StreamUpdate {
                tick,
                range: (lo, tick),
                value,
                standard_error: se,
                ci: (value - z * se, value + z * se),
                confidence: self.confidence,
                generation,
                model_fingerprint,
            });
            self.next_tick += self.every;
        }
        Ok(updates)
    }

    /// Residual statistics of `snap`'s model generation on the held-out
    /// calibration day, cached per generation.
    fn calibration_for(&mut self, snap: &StreamSnapshot) -> Result<&Calibration> {
        let needs = self.calibration.as_ref().is_none_or(|(gen, _)| *gen != snap.generation);
        if needs {
            let heldout_scores = self.ctx.heldout_score_index(&snap.nn)?;
            let head = snap.nn.head_index(self.class).ok_or_else(|| {
                BlazeItError::Internal(format!("no held-out head for {}", self.class))
            })?;
            let truth = self.ctx.labeled().heldout().class_counts(self.class);
            let n = truth.len().min(heldout_scores.num_frames());
            let residuals: Vec<f64> =
                // blazeit-lint: allow(panic-site::index) -- i ranges over 0..n with n =
                // truth.len().min(..), so truth[i] is in range
                (0..n).map(|i| truth[i] as f64 - heldout_scores.expected_count(i, head)).collect();
            let n_f = residuals.len().max(1) as f64;
            let mean = residuals.iter().sum::<f64>() / n_f;
            let variance = if residuals.len() > 1 {
                residuals.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n_f - 1.0)
            } else {
                0.0
            };
            self.calibration = Some((
                snap.generation,
                Calibration {
                    mean_residual: mean,
                    residual_variance: variance,
                    n: residuals.len(),
                },
            ));
        }
        match &self.calibration {
            Some((_, calibration)) => Ok(calibration),
            None => Err(BlazeItError::Internal(
                "subscription calibration cache empty after population".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_statistic_basics() {
        // Identical samples: zero.
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
        // Disjoint supports: one.
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
        // Symmetric.
        let c = [1.5, 2.5, 3.5, 9.0];
        assert!((ks_statistic(&a, &c) - ks_statistic(&c, &a)).abs() < 1e-12);
        // Bounded.
        assert!((0.0..=1.0).contains(&ks_statistic(&a, &c)));
        // Empty samples are not drift.
        assert_eq!(ks_statistic(&[], &a), 0.0);
    }

    #[test]
    fn drift_config_defaults_and_disabled() {
        let d = DriftConfig::default();
        assert!(d.threshold.is_finite());
        assert!(d.window > 0 && d.check_every > 0);
        let off = DriftConfig::disabled();
        assert!(!off.threshold.is_finite());
    }

    #[test]
    fn refresh_state_labels() {
        assert_eq!(RefreshState::Idle.label(), "idle");
        assert_eq!(RefreshState::Pending.label(), "pending");
        assert_eq!(RefreshState::Running.label(), "running");
        assert_eq!(RefreshState::Completed { generation: 2 }.label(), "completed (generation 2)");
        assert_eq!(RefreshState::Failed { generation: 3 }.label(), "failed (generation 3 kept)");
    }
}
