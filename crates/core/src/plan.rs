//! Explicit query plans: what the rule-based optimizer chose, as an inspectable value.
//!
//! A [`QueryPlan`] is the catalog-level plan for one prepared query: the query's
//! classification, the [`MergeSemantics`] describing how per-video results combine
//! into one answer, and one [`VideoPlan`] *sub-plan per video* the `FROM` clause
//! spans. The common single-video query has exactly one sub-plan (reachable through
//! [`QueryPlan::only`]); a `FROM a, b, c` or `FROM *` query fans out into one
//! sub-plan per registered video, each with its own strategy, specialized heads, and
//! cache warmth — which is exactly what `EXPLAIN` renders, so a mixed catalog shows
//! per-video `cold` / `disk-warm` / `warm` states side by side.
//!
//! [`plan_query`] builds the plan *without charging the simulated clock*: it reads
//! only the labeled sets' statistics and the contexts' caches. Callers inspect and
//! override the plan through [`PreparedQuery`](crate::session::PreparedQuery) before
//! running it, and `EXPLAIN <query>` renders it via the [`std::fmt::Display`] impl.
//!
//! One decision cannot always be made for free: Algorithm 1's rewrite-vs-control-
//! variates choice needs the specialized network's held-out error, which requires
//! training. When the network and its held-out score index are already cached the
//! planner resolves the decision immediately (the bootstrap over cached scores is
//! pure computation); otherwise the sub-plan honestly reports
//! [`RewriteDecision::AtExecution`].

use crate::aggregate::{SamplingOptions, MIN_TRAINING_EXAMPLES};
use crate::baselines::requirement_pairs;
use crate::context::{CacheWarmth, VideoContext};
use crate::fault::HealthReport;
use crate::scrub::{ScrubOptions, MIN_SCRUB_EXAMPLES};
use crate::select::{SelectionOptions, MIN_LABEL_FILTER_EXAMPLES};
use crate::stream::StreamStatus;
use crate::{BlazeItError, Result};
use blazeit_frameql::query::{AggregateKind, QueryClass, QueryPlanInfo};
use blazeit_videostore::ObjectClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How an aggregate's rewrite-vs-control-variates choice (Algorithm 1) stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewriteDecision {
    /// The cached held-out error estimate meets the tolerance: answer from the
    /// specialized network alone.
    Rewrite,
    /// The cached held-out error estimate misses the tolerance: sample with the
    /// specialized network as a control variate.
    ControlVariates,
    /// The specialized network (or its held-out scores) is not cached yet; the
    /// held-out check runs — and is charged — at execution time.
    AtExecution,
}

/// The execution strategy the optimizer chose for one video of a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanStrategy {
    /// Exact aggregate: object detection on every frame (no error tolerance given).
    ExactScan,
    /// Exact `COUNT(DISTINCT trackid)`: detection + entity resolution on every frame.
    ExactDistinct,
    /// Plain adaptive sampling (no specialized network trainable for this query).
    NaiveSampling,
    /// Algorithm 1: specialized network, then query rewriting or control variates.
    SpecializedAggregate {
        /// The rewrite decision, resolved at plan time when the caches allow it.
        decision: RewriteDecision,
    },
    /// A continuous aggregate (`WINDOW` / `EVERY` clauses): executed tick by
    /// tick through `Session::subscribe` over the stream's incremental score
    /// index, never as a one-shot query.
    ContinuousAggregate,
    /// Scrubbing fallback: sequential scan (no training examples of the event).
    ScrubScan,
    /// Scrubbing: rank all frames by specialized-NN confidence, verify best-first.
    ScrubRanked,
    /// Content-based selection (or exhaustive scan) through the filter pipeline.
    Selection,
}

/// How the per-video sub-results of a multi-video query combine into one answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeSemantics {
    /// The query spans one video: its sub-result *is* the answer.
    SingleVideo,
    /// Aggregates: per-video estimates are summed into a catalog-wide total, and
    /// their standard errors compose as the root-sum-square (the videos' samplers
    /// are independent), so the combined confidence interval is never wider than
    /// the sum of the per-video intervals.
    SumEstimates,
    /// Scrubbing: per-video candidate rankings are interleaved by descending
    /// confidence against one *global* `LIMIT`; once it is satisfied, no video is
    /// charged another detector call (early cancellation).
    GlobalLimit,
    /// Selection: per-video rows are concatenated in `FROM`-clause order, each
    /// tagged with its source video.
    ConcatRows,
}

impl MergeSemantics {
    /// The label `EXPLAIN` renders for the merge step.
    fn label(&self) -> &'static str {
        match self {
            MergeSemantics::SingleVideo => "single video (no merge)",
            MergeSemantics::SumEstimates => {
                "sum per-video estimates (composed confidence interval)"
            }
            MergeSemantics::GlobalLimit => {
                "interleave per-video rankings against one global LIMIT \
                 (early cancellation once satisfied)"
            }
            MergeSemantics::ConcatRows => "concatenate rows tagged with their source video",
        }
    }
}

/// The resolved, overridable sub-plan for one video of a prepared query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoPlan {
    /// The registered video this sub-plan executes against.
    pub video: String,
    /// The chosen execution strategy.
    pub strategy: PlanStrategy,
    /// Specialized-network heads `(class, max_count)` the sub-plan trains or reuses.
    pub heads: Vec<(ObjectClass, usize)>,
    /// Adaptive-sampling budget (aggregates with an error tolerance).
    pub sampling: Option<SamplingOptions>,
    /// Scrubbing limit / gap. For a fan-out plan the limit is *global*: execution
    /// requires every sub-plan to carry identical scrub options (and rejects
    /// divergent `plan_mut` overrides with a clear error, rather than silently
    /// honoring one sub-plan's values).
    pub scrub: Option<ScrubOptions>,
    /// Which inferred filters a selection sub-plan may use.
    pub selection: SelectionOptions,
    /// Hard cap on detector invocations (set via
    /// [`PreparedQuery::with_budget`](crate::session::PreparedQuery::with_budget)).
    /// Caps this video's sampler / scan. A fan-out scrub applies it as one
    /// *global* verification cap and therefore requires every sub-plan to carry
    /// the same value (divergent overrides are rejected at run time).
    pub detection_budget: Option<u64>,
    /// How warm the trained-network cache is for `heads`: in memory, persisted
    /// in the catalog's index store (a free disk load away), or cold (training
    /// will be charged).
    pub specialized_cache: CacheWarmth,
    /// How warm the unseen video's score-index cache is for `heads` (same three
    /// states; disk-warm and memory-warm both execute with zero specialized
    /// inference charged).
    pub score_index_cache: CacheWarmth,
    /// The stream state for this video (frames ingested, index freshness and
    /// model generation, drift score, refresh state), rendered by `EXPLAIN`.
    /// `None` for ordinary fixed-length registrations.
    pub stream: Option<StreamStatus>,
    /// The context's health snapshot (store degradation, retry counters,
    /// retrain failures), rendered by `EXPLAIN`. `None` when there is nothing
    /// notable — a fully healthy context renders no health lines at all.
    pub health: Option<HealthReport>,
}

/// How the serving layer's coalescing result cache disposed of a query,
/// stamped onto the plan by `blazeit_core::serve` so `EXPLAIN` can report it.
/// Plans built directly by [`plan_query`] (no server in the path) carry no
/// status and render no `cache:` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheStatus {
    /// Answered from a published result of the same `(query, generation)` key.
    Hit,
    /// Computed fresh (and published for future hits).
    Miss,
    /// Attached as a waiter to an identical in-flight computation; `n` is the
    /// number of waiters that shared the one execution.
    Coalesced(usize),
}

impl CacheStatus {
    /// The `EXPLAIN` rendering: `hit`, `miss`, or `coalesced(n waiters)`.
    pub fn label(&self) -> String {
        match self {
            CacheStatus::Hit => "hit".to_string(),
            CacheStatus::Miss => "miss".to_string(),
            CacheStatus::Coalesced(n) => {
                format!("coalesced({n} waiter{})", if *n == 1 { "" } else { "s" })
            }
        }
    }
}

/// The resolved, overridable plan for one prepared query: one sub-plan per video the
/// `FROM` clause spans, plus the semantics merging their results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The query classification driving the strategy choice.
    pub class: QueryClass,
    /// How per-video sub-results combine into the final answer.
    pub merge: MergeSemantics,
    /// One sub-plan per video, in `FROM`-clause order (registration order for
    /// `FROM *`). Always non-empty.
    pub subplans: Vec<VideoPlan>,
    /// Serving-layer cache disposition, when the query went through a
    /// [`serve::Server`](crate::serve::Server). `None` (the planner default)
    /// renders nothing, keeping direct-session `EXPLAIN` output unchanged.
    #[serde(default)]
    pub cache: Option<CacheStatus>,
}

impl QueryPlan {
    /// The single sub-plan of a single-video query.
    ///
    /// # Panics
    ///
    /// Panics if the plan fans out over more than one video — use
    /// [`QueryPlan::subplans`] (or iterate) for multi-video plans.
    pub fn only(&self) -> &VideoPlan {
        assert_eq!(
            self.subplans.len(),
            1,
            "QueryPlan::only on a plan spanning {} videos",
            self.subplans.len()
        );
        // blazeit-lint: allow(panic-site::index) -- the assert_eq! directly above pins
        // subplans.len() to 1
        &self.subplans[0]
    }

    /// Mutable access to the single sub-plan of a single-video query (same panic
    /// rule as [`QueryPlan::only`]).
    pub fn only_mut(&mut self) -> &mut VideoPlan {
        assert_eq!(
            self.subplans.len(),
            1,
            "QueryPlan::only_mut on a plan spanning {} videos",
            self.subplans.len()
        );
        // blazeit-lint: allow(panic-site::index) -- the assert_eq! above pins subplans.len() to 1
        &mut self.subplans[0]
    }

    /// Whether the plan fans out with catalog merge semantics (`FROM *` or a
    /// `FROM` list of two or more videos). A fan-out plan produces the `Catalog*`
    /// output shapes even when it happens to span a single registered video.
    pub fn is_fan_out(&self) -> bool {
        !matches!(self.merge, MergeSemantics::SingleVideo)
    }
}

/// Plans an analyzed query against every video context it spans, in order.
///
/// Each element of `targets` pairs a registered video's context with the query's
/// analysis against that video's UDF registry. `fan_out` says whether the query's
/// `FROM` clause is catalog-shaped (`FROM *`, or a list of two or more videos):
/// fan-out plans keep the catalog merge semantics — and the `Catalog*` output
/// shapes — even when the catalog happens to hold a single video, so `FROM *`
/// always returns the same result structure regardless of registration count.
///
/// Free of side effects: nothing is trained, nothing is scored, and nothing is
/// charged to the simulated clock — this is what makes `EXPLAIN` free.
pub fn plan_query(targets: &[(&VideoContext, &QueryPlanInfo)], fan_out: bool) -> Result<QueryPlan> {
    let Some((_, first_info)) = targets.first() else {
        return Err(BlazeItError::Internal("plan_query requires at least one video".into()));
    };
    let class = first_info.class.clone();
    let merge = if !fan_out && targets.len() == 1 {
        MergeSemantics::SingleVideo
    } else {
        match &class {
            QueryClass::Aggregate { .. } => MergeSemantics::SumEstimates,
            QueryClass::Scrub => MergeSemantics::GlobalLimit,
            QueryClass::Select | QueryClass::Exhaustive => MergeSemantics::ConcatRows,
        }
    };
    let subplans = targets
        .iter()
        .map(|(ctx, info)| plan_video(ctx, info))
        .collect::<Result<Vec<VideoPlan>>>()?;
    Ok(QueryPlan { class, merge, subplans, cache: None })
}

/// Plans an analyzed query against one video context (one sub-plan of the fan-out).
///
/// Free of side effects and simulated cost, like [`plan_query`].
pub fn plan_video(ctx: &VideoContext, info: &QueryPlanInfo) -> Result<VideoPlan> {
    let mut plan = plan_video_strategy(ctx, info)?;
    // For a streaming context, surface the live state for the chosen heads —
    // this is the free plan-time read `EXPLAIN` renders.
    plan.stream = ctx.stream_status(&plan.heads);
    // Surface degradation only when there is something to say: a healthy
    // context's plan renders byte-identically to one planned before the
    // robustness layer existed.
    let report = ctx.health().report();
    plan.health = report.is_notable().then_some(report);
    Ok(plan)
}

fn plan_video_strategy(ctx: &VideoContext, info: &QueryPlanInfo) -> Result<VideoPlan> {
    let mut plan = VideoPlan {
        video: ctx.video().name().to_string(),
        strategy: PlanStrategy::ExactScan,
        heads: Vec::new(),
        sampling: None,
        scrub: None,
        selection: SelectionOptions::all(),
        detection_budget: None,
        specialized_cache: CacheWarmth::Cold,
        score_index_cache: CacheWarmth::Cold,
        stream: None,
        health: None,
    };

    match &info.class {
        QueryClass::Aggregate { kind } => {
            if let AggregateKind::CountDistinct(column) = kind {
                if column != "trackid" {
                    return Err(BlazeItError::Unsupported(format!(
                        "COUNT(DISTINCT {column}) is not supported; only trackid"
                    )));
                }
                plan.strategy = PlanStrategy::ExactDistinct;
                return Ok(plan);
            }
            if info.window.is_some() || info.every.is_some() {
                // Continuous clauses: the query runs tick by tick under
                // Session::subscribe, answering from the stream's incremental
                // index for the single queried class.
                plan.strategy = PlanStrategy::ContinuousAggregate;
                if let Some(class) = info.single_class() {
                    let heads = vec![(class, ctx.default_max_count(class, 1))];
                    plan.specialized_cache = ctx.specialized_warmth(&heads);
                    plan.score_index_cache = ctx.score_index_warmth(&heads);
                    plan.heads = heads;
                }
                return Ok(plan);
            }
            let Some(error) = info.error_within else {
                plan.strategy = PlanStrategy::ExactScan;
                return Ok(plan);
            };
            let confidence = info.confidence.unwrap_or(0.95);
            plan.sampling =
                Some(SamplingOptions::new(error, confidence, ctx.config().sampling_seed));
            if let Some(class) = info.single_class() {
                let enough_data =
                    ctx.labeled().has_training_examples(&[(class, 1)], MIN_TRAINING_EXAMPLES);
                if enough_data {
                    let heads = vec![(class, ctx.default_max_count(class, 1))];
                    plan.specialized_cache = ctx.specialized_warmth(&heads);
                    plan.score_index_cache = ctx.score_index_warmth(&heads);
                    let decision = resolve_rewrite_decision(ctx, &heads, class, error, confidence);
                    plan.heads = heads;
                    plan.strategy = PlanStrategy::SpecializedAggregate { decision };
                    return Ok(plan);
                }
            }
            plan.strategy = PlanStrategy::NaiveSampling;
            Ok(plan)
        }
        QueryClass::Scrub => {
            let requirements = requirement_pairs(&info.requirements);
            if requirements.is_empty() {
                return Err(BlazeItError::Unsupported(
                    "scrubbing queries must constrain at least one object class".into(),
                ));
            }
            plan.scrub =
                Some(ScrubOptions { limit: info.limit.unwrap_or(10), gap: info.gap.unwrap_or(0) });
            if ctx.labeled().has_training_examples(&requirements, MIN_SCRUB_EXAMPLES) {
                let heads: Vec<(ObjectClass, usize)> = requirements
                    .iter()
                    .map(|&(class, min_count)| (class, ctx.default_max_count(class, min_count)))
                    .collect();
                plan.specialized_cache = ctx.specialized_warmth(&heads);
                plan.score_index_cache = ctx.score_index_warmth(&heads);
                plan.heads = heads;
                plan.strategy = PlanStrategy::ScrubRanked;
            } else {
                plan.strategy = PlanStrategy::ScrubScan;
            }
            Ok(plan)
        }
        QueryClass::Select | QueryClass::Exhaustive => {
            plan.strategy = PlanStrategy::Selection;
            // The label filter's head choice, recorded for inspection when the class
            // has enough labeled data for calibration (mirrors the selection
            // executor's own eligibility rule).
            if let Some(class) = info.single_class() {
                if ctx.labeled().has_training_examples(&[(class, 1)], MIN_LABEL_FILTER_EXAMPLES) {
                    let heads = vec![(class, ctx.default_max_count(class, 1))];
                    plan.specialized_cache = ctx.specialized_warmth(&heads);
                    plan.score_index_cache = ctx.score_index_warmth(&heads);
                    plan.heads = heads;
                }
            }
            Ok(plan)
        }
    }
}

/// Resolves Algorithm 1's rewrite decision from cached state only (free), or reports
/// that it must wait for execution.
fn resolve_rewrite_decision(
    ctx: &VideoContext,
    heads: &[(ObjectClass, usize)],
    class: ObjectClass,
    error: f64,
    confidence: f64,
) -> RewriteDecision {
    let Some(nn) = ctx.cached_specialized(heads) else {
        return RewriteDecision::AtExecution;
    };
    let Some(scores) = ctx.cached_heldout_score_index(&nn) else {
        return RewriteDecision::AtExecution;
    };
    let Ok(estimate) = nn.estimate_fcount_error_from_scores(
        &scores,
        &ctx.labeled().heldout().class_counts(class),
        class,
        ctx.config().bootstrap_samples,
        ctx.config().sampling_seed,
    ) else {
        return RewriteDecision::AtExecution;
    };
    if estimate.prob_error_within(error) >= confidence {
        RewriteDecision::Rewrite
    } else {
        RewriteDecision::ControlVariates
    }
}

impl QueryPlan {
    fn class_label(&self) -> String {
        match &self.class {
            QueryClass::Aggregate { kind } => match kind {
                AggregateKind::FrameAveragedCount => "aggregate (FCOUNT)".to_string(),
                AggregateKind::Count => "aggregate (COUNT)".to_string(),
                AggregateKind::CountDistinct(col) => format!("aggregate (COUNT DISTINCT {col})"),
            },
            QueryClass::Scrub => "scrub (cardinality-limited)".to_string(),
            QueryClass::Select => "content-based selection".to_string(),
            QueryClass::Exhaustive => "exhaustive scan".to_string(),
        }
    }
}

impl VideoPlan {
    fn strategy_label(&self) -> String {
        match &self.strategy {
            PlanStrategy::ExactScan => "exact scan (detector on every frame)".to_string(),
            PlanStrategy::ExactDistinct => {
                "exact distinct count (detector + entity resolution on every frame)".to_string()
            }
            PlanStrategy::NaiveSampling => {
                "naive adaptive sampling (no specialized NN)".to_string()
            }
            PlanStrategy::SpecializedAggregate { decision } => match decision {
                RewriteDecision::Rewrite => {
                    "query rewriting (cached held-out error within tolerance)".to_string()
                }
                RewriteDecision::ControlVariates => {
                    "control-variate sampling (cached held-out error exceeds tolerance)".to_string()
                }
                RewriteDecision::AtExecution => {
                    "specialized NN; rewrite vs control variates decided at execution \
                     (train + held-out error check)"
                        .to_string()
                }
            },
            PlanStrategy::ContinuousAggregate => {
                "continuous aggregate over the stream's incremental index \
                 (run via Session::subscribe)"
                    .to_string()
            }
            PlanStrategy::ScrubScan => {
                "sequential scan (no training examples of the event)".to_string()
            }
            PlanStrategy::ScrubRanked => {
                "rank frames by specialized-NN confidence, verify best-first".to_string()
            }
            PlanStrategy::Selection => "filtered scan feeding the object detector".to_string(),
        }
    }

    /// Renders the per-video lines of this sub-plan (everything below the
    /// class / merge header).
    fn fmt_body(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  strategy: {}", self.strategy_label())?;
        if !self.heads.is_empty() {
            let heads: Vec<String> =
                self.heads.iter().map(|(c, m)| format!("{}<={m}", c.name())).collect();
            writeln!(f, "  heads:    {}", heads.join(", "))?;
        }
        if let Some(s) = &self.sampling {
            writeln!(
                f,
                "  sampling: error within {} at {:.0}% confidence (seed {})",
                s.error,
                s.confidence * 100.0,
                s.seed
            )?;
        }
        if let Some(s) = &self.scrub {
            writeln!(f, "  scrub:    limit {} gap {}", s.limit, s.gap)?;
        }
        if matches!(self.strategy, PlanStrategy::Selection) {
            let onoff = |b: bool| if b { "on" } else { "off" };
            writeln!(
                f,
                "  filters:  label={} content={} temporal={} spatial={}",
                onoff(self.selection.use_label_filter),
                onoff(self.selection.use_content_filter),
                onoff(self.selection.use_temporal_filter),
                onoff(self.selection.use_spatial_filter),
            )?;
        }
        match self.detection_budget {
            Some(budget) => writeln!(f, "  budget:   at most {budget} detector calls")?,
            None => writeln!(f, "  budget:   unlimited detector calls")?,
        }
        write!(
            f,
            "  caches:   specialized={} score-index={}",
            self.specialized_cache.label(),
            self.score_index_cache.label()
        )?;
        if let Some(stream) = &self.stream {
            writeln!(f)?;
            write!(
                f,
                "  stream:   ingested {}/{} frames; index {}",
                stream.ingested,
                stream.capacity,
                match stream.index_frames {
                    Some(frames) => {
                        format!("covers {frames} (generation {})", stream.generation)
                    }
                    None => "not built".to_string(),
                },
            )?;
            writeln!(f)?;
            write!(
                f,
                "  drift:    score {} vs threshold {}; refresh {}",
                stream.drift_score.map_or("unchecked".to_string(), |s| format!("{s:.3}")),
                if stream.drift_threshold.is_finite() {
                    format!("{:.3}", stream.drift_threshold)
                } else {
                    "disabled".to_string()
                },
                stream.refresh.label(),
            )?;
        }
        if let Some(health) = &self.health {
            writeln!(f)?;
            write!(f, "  health:   {}", health.health_line())?;
            if let Some(retrain) = health.retrain_line() {
                writeln!(f)?;
                write!(f, "  retrain:  {retrain}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_fan_out() {
            // blazeit-lint: allow(panic-site::index) -- !is_fan_out() means this plan holds exactly
            // one subplan
            let sub = &self.subplans[0];
            writeln!(f, "QUERY PLAN for '{}'", sub.video)?;
            writeln!(f, "  class:    {}", self.class_label())?;
            if let Some(status) = &self.cache {
                writeln!(f, "  cache:    {}", status.label())?;
            }
            return sub.fmt_body(f);
        }
        let plural = if self.subplans.len() == 1 { "video" } else { "videos" };
        writeln!(f, "QUERY PLAN over {} {plural}", self.subplans.len())?;
        writeln!(f, "  class:    {}", self.class_label())?;
        writeln!(f, "  merge:    {}", self.merge.label())?;
        if let Some(status) = &self.cache {
            writeln!(f, "  cache:    {}", status.label())?;
        }
        for (i, sub) in self.subplans.iter().enumerate() {
            writeln!(f, "SUB-PLAN for '{}'", sub.video)?;
            sub.fmt_body(f)?;
            if i + 1 < self.subplans.len() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}
