//! Explicit query plans: what the rule-based optimizer chose, as an inspectable value.
//!
//! [`plan_query`] turns an analyzed query into a [`QueryPlan`] *without charging the
//! simulated clock*: it reads only the labeled set's statistics and the context's
//! caches. The plan records the chosen strategy, the specialized heads that will be
//! trained (or reused), the sampling / scrub / selection knobs, and whether the
//! per-video caches are already warm. Callers inspect and override the plan through
//! [`PreparedQuery`](crate::session::PreparedQuery) before running it, and
//! `EXPLAIN <query>` renders it via the [`std::fmt::Display`] impl.
//!
//! One decision cannot always be made for free: Algorithm 1's rewrite-vs-control-
//! variates choice needs the specialized network's held-out error, which requires
//! training. When the network and its held-out score index are already cached the
//! planner resolves the decision immediately (the bootstrap over cached scores is
//! pure computation); otherwise the plan honestly reports
//! [`RewriteDecision::AtExecution`].

use crate::aggregate::{SamplingOptions, MIN_TRAINING_EXAMPLES};
use crate::baselines::requirement_pairs;
use crate::context::{CacheWarmth, VideoContext};
use crate::scrub::{ScrubOptions, MIN_SCRUB_EXAMPLES};
use crate::select::{SelectionOptions, MIN_LABEL_FILTER_EXAMPLES};
use crate::{BlazeItError, Result};
use blazeit_frameql::query::{AggregateKind, QueryClass, QueryPlanInfo};
use blazeit_videostore::ObjectClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How an aggregate's rewrite-vs-control-variates choice (Algorithm 1) stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewriteDecision {
    /// The cached held-out error estimate meets the tolerance: answer from the
    /// specialized network alone.
    Rewrite,
    /// The cached held-out error estimate misses the tolerance: sample with the
    /// specialized network as a control variate.
    ControlVariates,
    /// The specialized network (or its held-out scores) is not cached yet; the
    /// held-out check runs — and is charged — at execution time.
    AtExecution,
}

/// The execution strategy the optimizer chose for a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanStrategy {
    /// Exact aggregate: object detection on every frame (no error tolerance given).
    ExactScan,
    /// Exact `COUNT(DISTINCT trackid)`: detection + entity resolution on every frame.
    ExactDistinct,
    /// Plain adaptive sampling (no specialized network trainable for this query).
    NaiveSampling,
    /// Algorithm 1: specialized network, then query rewriting or control variates.
    SpecializedAggregate {
        /// The rewrite decision, resolved at plan time when the caches allow it.
        decision: RewriteDecision,
    },
    /// Scrubbing fallback: sequential scan (no training examples of the event).
    ScrubScan,
    /// Scrubbing: rank all frames by specialized-NN confidence, verify best-first.
    ScrubRanked,
    /// Content-based selection (or exhaustive scan) through the filter pipeline.
    Selection,
}

/// The resolved, overridable plan for one prepared query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The registered video the query routes to.
    pub video: String,
    /// The query classification driving the strategy choice.
    pub class: QueryClass,
    /// The chosen execution strategy.
    pub strategy: PlanStrategy,
    /// Specialized-network heads `(class, max_count)` the plan trains or reuses.
    pub heads: Vec<(ObjectClass, usize)>,
    /// Adaptive-sampling budget (aggregates with an error tolerance).
    pub sampling: Option<SamplingOptions>,
    /// Scrubbing limit / gap.
    pub scrub: Option<ScrubOptions>,
    /// Which inferred filters a selection plan may use.
    pub selection: SelectionOptions,
    /// Hard cap on detector invocations (set via
    /// [`PreparedQuery::with_budget`](crate::session::PreparedQuery::with_budget)).
    pub detection_budget: Option<u64>,
    /// How warm the trained-network cache is for `heads`: in memory, persisted
    /// in the catalog's index store (a free disk load away), or cold (training
    /// will be charged).
    pub specialized_cache: CacheWarmth,
    /// How warm the unseen video's score-index cache is for `heads` (same three
    /// states; disk-warm and memory-warm both execute with zero specialized
    /// inference charged).
    pub score_index_cache: CacheWarmth,
}

/// Plans an analyzed query against a video context.
///
/// Free of side effects: nothing is trained, nothing is scored, and nothing is
/// charged to the simulated clock — this is what makes `EXPLAIN` free.
pub fn plan_query(ctx: &VideoContext, info: &QueryPlanInfo) -> Result<QueryPlan> {
    let mut plan = QueryPlan {
        video: ctx.video().name().to_string(),
        class: info.class.clone(),
        strategy: PlanStrategy::ExactScan,
        heads: Vec::new(),
        sampling: None,
        scrub: None,
        selection: SelectionOptions::all(),
        detection_budget: None,
        specialized_cache: CacheWarmth::Cold,
        score_index_cache: CacheWarmth::Cold,
    };

    match &info.class {
        QueryClass::Aggregate { kind } => {
            if let AggregateKind::CountDistinct(column) = kind {
                if column != "trackid" {
                    return Err(BlazeItError::Unsupported(format!(
                        "COUNT(DISTINCT {column}) is not supported; only trackid"
                    )));
                }
                plan.strategy = PlanStrategy::ExactDistinct;
                return Ok(plan);
            }
            let Some(error) = info.error_within else {
                plan.strategy = PlanStrategy::ExactScan;
                return Ok(plan);
            };
            let confidence = info.confidence.unwrap_or(0.95);
            plan.sampling =
                Some(SamplingOptions::new(error, confidence, ctx.config().sampling_seed));
            if let Some(class) = info.single_class() {
                let enough_data =
                    ctx.labeled().has_training_examples(&[(class, 1)], MIN_TRAINING_EXAMPLES);
                if enough_data {
                    let heads = vec![(class, ctx.default_max_count(class, 1))];
                    plan.specialized_cache = ctx.specialized_warmth(&heads);
                    plan.score_index_cache = ctx.score_index_warmth(&heads);
                    let decision = resolve_rewrite_decision(ctx, &heads, class, error, confidence);
                    plan.heads = heads;
                    plan.strategy = PlanStrategy::SpecializedAggregate { decision };
                    return Ok(plan);
                }
            }
            plan.strategy = PlanStrategy::NaiveSampling;
            Ok(plan)
        }
        QueryClass::Scrub => {
            let requirements = requirement_pairs(&info.requirements);
            if requirements.is_empty() {
                return Err(BlazeItError::Unsupported(
                    "scrubbing queries must constrain at least one object class".into(),
                ));
            }
            plan.scrub =
                Some(ScrubOptions { limit: info.limit.unwrap_or(10), gap: info.gap.unwrap_or(0) });
            if ctx.labeled().has_training_examples(&requirements, MIN_SCRUB_EXAMPLES) {
                let heads: Vec<(ObjectClass, usize)> = requirements
                    .iter()
                    .map(|&(class, min_count)| (class, ctx.default_max_count(class, min_count)))
                    .collect();
                plan.specialized_cache = ctx.specialized_warmth(&heads);
                plan.score_index_cache = ctx.score_index_warmth(&heads);
                plan.heads = heads;
                plan.strategy = PlanStrategy::ScrubRanked;
            } else {
                plan.strategy = PlanStrategy::ScrubScan;
            }
            Ok(plan)
        }
        QueryClass::Select | QueryClass::Exhaustive => {
            plan.strategy = PlanStrategy::Selection;
            // The label filter's head choice, recorded for inspection when the class
            // has enough labeled data for calibration (mirrors the selection
            // executor's own eligibility rule).
            if let Some(class) = info.single_class() {
                if ctx.labeled().has_training_examples(&[(class, 1)], MIN_LABEL_FILTER_EXAMPLES) {
                    let heads = vec![(class, ctx.default_max_count(class, 1))];
                    plan.specialized_cache = ctx.specialized_warmth(&heads);
                    plan.score_index_cache = ctx.score_index_warmth(&heads);
                    plan.heads = heads;
                }
            }
            Ok(plan)
        }
    }
}

/// Resolves Algorithm 1's rewrite decision from cached state only (free), or reports
/// that it must wait for execution.
fn resolve_rewrite_decision(
    ctx: &VideoContext,
    heads: &[(ObjectClass, usize)],
    class: ObjectClass,
    error: f64,
    confidence: f64,
) -> RewriteDecision {
    let Some(nn) = ctx.cached_specialized(heads) else {
        return RewriteDecision::AtExecution;
    };
    let Some(scores) = ctx.cached_heldout_score_index(&nn) else {
        return RewriteDecision::AtExecution;
    };
    let Ok(estimate) = nn.estimate_fcount_error_from_scores(
        &scores,
        &ctx.labeled().heldout().class_counts(class),
        class,
        ctx.config().bootstrap_samples,
        ctx.config().sampling_seed,
    ) else {
        return RewriteDecision::AtExecution;
    };
    if estimate.prob_error_within(error) >= confidence {
        RewriteDecision::Rewrite
    } else {
        RewriteDecision::ControlVariates
    }
}

impl QueryPlan {
    fn class_label(&self) -> String {
        match &self.class {
            QueryClass::Aggregate { kind } => match kind {
                AggregateKind::FrameAveragedCount => "aggregate (FCOUNT)".to_string(),
                AggregateKind::Count => "aggregate (COUNT)".to_string(),
                AggregateKind::CountDistinct(col) => format!("aggregate (COUNT DISTINCT {col})"),
            },
            QueryClass::Scrub => "scrub (cardinality-limited)".to_string(),
            QueryClass::Select => "content-based selection".to_string(),
            QueryClass::Exhaustive => "exhaustive scan".to_string(),
        }
    }

    fn strategy_label(&self) -> String {
        match &self.strategy {
            PlanStrategy::ExactScan => "exact scan (detector on every frame)".to_string(),
            PlanStrategy::ExactDistinct => {
                "exact distinct count (detector + entity resolution on every frame)".to_string()
            }
            PlanStrategy::NaiveSampling => {
                "naive adaptive sampling (no specialized NN)".to_string()
            }
            PlanStrategy::SpecializedAggregate { decision } => match decision {
                RewriteDecision::Rewrite => {
                    "query rewriting (cached held-out error within tolerance)".to_string()
                }
                RewriteDecision::ControlVariates => {
                    "control-variate sampling (cached held-out error exceeds tolerance)".to_string()
                }
                RewriteDecision::AtExecution => {
                    "specialized NN; rewrite vs control variates decided at execution \
                     (train + held-out error check)"
                        .to_string()
                }
            },
            PlanStrategy::ScrubScan => {
                "sequential scan (no training examples of the event)".to_string()
            }
            PlanStrategy::ScrubRanked => {
                "rank frames by specialized-NN confidence, verify best-first".to_string()
            }
            PlanStrategy::Selection => "filtered scan feeding the object detector".to_string(),
        }
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QUERY PLAN for '{}'", self.video)?;
        writeln!(f, "  class:    {}", self.class_label())?;
        writeln!(f, "  strategy: {}", self.strategy_label())?;
        if !self.heads.is_empty() {
            let heads: Vec<String> =
                self.heads.iter().map(|(c, m)| format!("{}<={m}", c.name())).collect();
            writeln!(f, "  heads:    {}", heads.join(", "))?;
        }
        if let Some(s) = &self.sampling {
            writeln!(
                f,
                "  sampling: error within {} at {:.0}% confidence (seed {})",
                s.error,
                s.confidence * 100.0,
                s.seed
            )?;
        }
        if let Some(s) = &self.scrub {
            writeln!(f, "  scrub:    limit {} gap {}", s.limit, s.gap)?;
        }
        if matches!(self.strategy, PlanStrategy::Selection) {
            let onoff = |b: bool| if b { "on" } else { "off" };
            writeln!(
                f,
                "  filters:  label={} content={} temporal={} spatial={}",
                onoff(self.selection.use_label_filter),
                onoff(self.selection.use_content_filter),
                onoff(self.selection.use_temporal_filter),
                onoff(self.selection.use_spatial_filter),
            )?;
        }
        match self.detection_budget {
            Some(budget) => writeln!(f, "  budget:   at most {budget} detector calls")?,
            None => writeln!(f, "  budget:   unlimited detector calls")?,
        }
        write!(
            f,
            "  caches:   specialized={} score-index={}",
            self.specialized_cache.label(),
            self.score_index_cache.label()
        )
    }
}
