//! Engine configuration.

use crate::fault::RetryPolicy;
use blazeit_detect::{CostProfile, DetectionMethod};
use blazeit_nn::features::FeatureConfig;
use blazeit_nn::train::TrainConfig;
use blazeit_videostore::DatasetPreset;
use serde::{Deserialize, Serialize};

/// Configuration of a [`BlazeIt`](crate::engine::BlazeIt) engine instance.
///
/// As in the paper (Section 3, "Configuration"), the object detection method, its
/// confidence threshold, and the entity-resolution parameters are user-configurable;
/// everything else has defaults matching the paper's implementation notes (Section 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlazeItConfig {
    /// The object detection method treated as ground truth.
    pub detection_method: DetectionMethod,
    /// The detection confidence threshold (Table 3 assigns one per stream).
    pub detection_threshold: f32,
    /// Simulated throughput constants for specialized NNs, filters, training, decode.
    pub cost: CostProfile,
    /// Frame featurization for specialized NNs.
    pub features: FeatureConfig,
    /// Hidden layer widths of specialized NNs.
    pub specialized_hidden: Vec<usize>,
    /// Training settings for specialized NNs (1 epoch, batch 16, SGD momentum 0.9 in
    /// the paper; more epochs help the much smaller synthetic labeled sets).
    pub train: TrainConfig,
    /// Stride (in frames) at which the labeled training day is annotated by the
    /// detector to build the labeled set.
    pub labeled_stride: u64,
    /// Stride at which the held-out day is annotated for threshold / error estimation.
    pub heldout_stride: u64,
    /// Number of bootstrap resamples used for the specialized-NN error estimate.
    pub bootstrap_samples: usize,
    /// Fraction used by the "highest count in at least this fraction of frames" rule
    /// when picking the number of count classes (1% in the paper).
    pub count_class_min_fraction: f64,
    /// IoU threshold for the motion-IoU tracker (0.7 in the paper).
    pub tracker_iou: f32,
    /// Base RNG seed for sampling during query execution.
    pub sampling_seed: u64,
    /// Retry/backoff policy for transient index-store errors (each backoff is
    /// charged to the simulated clock under the `other` category).
    pub store_retry: RetryPolicy,
}

impl Default for BlazeItConfig {
    fn default() -> Self {
        BlazeItConfig {
            detection_method: DetectionMethod::MaskRcnn,
            detection_threshold: 0.8,
            cost: CostProfile::default(),
            features: FeatureConfig::default(),
            specialized_hidden: vec![48],
            train: {
                let mut t = TrainConfig { epochs: 8, ..TrainConfig::default() };
                t.sgd.learning_rate = 0.03;
                t
            },
            labeled_stride: 3,
            heldout_stride: 7,
            bootstrap_samples: 100,
            count_class_min_fraction: 0.01,
            tracker_iou: 0.7,
            sampling_seed: 0xB1A2_E175,
            store_retry: RetryPolicy::default(),
        }
    }
}

impl BlazeItConfig {
    /// The configuration the paper's Table 3 implies for a given dataset preset:
    /// FGFA with threshold 0.2 for taipei, Mask R-CNN with threshold 0.8 elsewhere.
    pub fn for_preset(preset: DatasetPreset) -> BlazeItConfig {
        let method = match preset {
            DatasetPreset::Taipei => DetectionMethod::Fgfa,
            _ => DetectionMethod::MaskRcnn,
        };
        BlazeItConfig {
            detection_method: method,
            detection_threshold: preset.detection_threshold(),
            ..BlazeItConfig::default()
        }
    }

    /// Returns a copy with a different sampling seed (used to average over runs).
    pub fn with_seed(&self, seed: u64) -> BlazeItConfig {
        BlazeItConfig { sampling_seed: seed, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let cfg = BlazeItConfig::default();
        assert_eq!(cfg.detection_method, DetectionMethod::MaskRcnn);
        assert!((cfg.tracker_iou - 0.7).abs() < 1e-6);
        assert!((cfg.count_class_min_fraction - 0.01).abs() < 1e-12);
        assert_eq!(cfg.train.batch_size, 16);
    }

    #[test]
    fn preset_configs_follow_table3() {
        let taipei = BlazeItConfig::for_preset(DatasetPreset::Taipei);
        assert_eq!(taipei.detection_method, DetectionMethod::Fgfa);
        assert!((taipei.detection_threshold - 0.2).abs() < 1e-6);
        let rialto = BlazeItConfig::for_preset(DatasetPreset::Rialto);
        assert_eq!(rialto.detection_method, DetectionMethod::MaskRcnn);
        assert!((rialto.detection_threshold - 0.8).abs() < 1e-6);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let a = BlazeItConfig::default();
        let b = a.with_seed(1234);
        assert_eq!(a.detection_method, b.detection_method);
        assert_ne!(a.sampling_seed, b.sampling_seed);
    }
}
