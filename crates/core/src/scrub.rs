//! Cardinality-limited scrubbing queries (Section 7 of the paper).
//!
//! The user asks for up to `LIMIT` frames containing a (possibly multi-class) rare
//! event, e.g. "at least one bus and at least five cars", with returned frames at least
//! `GAP` frames apart. Scanning sequentially or sampling uniformly is hopeless for rare
//! events, so BlazeIt adapts importance sampling from rare-event simulation: a
//! specialized NN scores every unseen frame with the probability that it satisfies the
//! predicate, frames are visited in descending confidence order, and the expensive
//! detector only verifies the most promising candidates until the requested number of
//! true positives is found. Only detector-verified frames are returned, so the result
//! contains no false positives (the paper reports only runtime for these queries).

use crate::baselines::{requirement_pairs, respects_gap};
use crate::context::VideoContext;
use crate::obs;
use crate::plan::{PlanStrategy, VideoPlan};
use crate::result::{QueryOutput, SourcedFrame};
use crate::{baselines, BlazeItError, Result};
use blazeit_detect::{CountVector, ObjectDetector};
use blazeit_frameql::query::QueryPlanInfo;
use blazeit_nn::specialized::SpecializedNN;
use blazeit_videostore::{FrameIndex, ObjectClass};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Minimum number of positive training frames required before BlazeIt trains a
/// specialized NN for a scrubbing query; below this it falls back to a filtered scan
/// (Section 7.1).
pub const MIN_SCRUB_EXAMPLES: usize = 1;

/// Options for a scrubbing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubOptions {
    /// Maximum number of frames to return.
    pub limit: u64,
    /// Minimum spacing between returned frames.
    pub gap: u64,
}

/// The outcome of a scrubbing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrubOutcome {
    /// Frames satisfying the predicate, in the order they were verified.
    pub frames: Vec<FrameIndex>,
    /// Number of detector invocations (the "sample complexity" of Figures 7 and 9).
    pub detection_calls: u64,
    /// Number of frames scored by the specialized NN (the whole unseen video unless a
    /// pre-built index was supplied).
    pub frames_scored: u64,
}

/// Executes a scrubbing query against one video, following the strategy the planner
/// resolved into its sub-plan.
pub fn execute(ctx: &VideoContext, info: &QueryPlanInfo, plan: &VideoPlan) -> Result<QueryOutput> {
    let requirements = requirement_pairs(&info.requirements);
    let opts = plan
        .scrub
        .ok_or_else(|| BlazeItError::Internal("scrub plan carries no scrub options".into()))?;

    match &plan.strategy {
        // Section 7.1: with no training examples of the event, fall back to scanning
        // (our NoScope-oracle analogue would be cheating here, so the naive scan is
        // the conservative fallback).
        PlanStrategy::ScrubScan => {
            let (frames, calls) = baselines::naive_scrub(ctx, &requirements, opts.limit, opts.gap)?;
            Ok(QueryOutput::Frames { frames, detection_calls: calls })
        }
        PlanStrategy::ScrubRanked => {
            let nn = ctx.specialized_for(&plan.heads)?;
            let ranked = score_frames(ctx, &nn, &requirements)?;
            let outcome =
                verify_ranked_with_budget(ctx, &ranked, &requirements, opts, plan.detection_budget);
            Ok(QueryOutput::Frames {
                frames: outcome.frames,
                detection_calls: outcome.detection_calls,
            })
        }
        other => Err(BlazeItError::Internal(format!(
            "scrub::execute called with non-scrub strategy {other:?}"
        ))),
    }
}

/// Trains (or fetches from cache) the multi-head counting NN for a set of requirements.
///
/// As in the paper, a single network is trained with one head per class, counting each
/// class separately; head sizes are the larger of the query's threshold and the
/// "highest count in ≥1% of frames" rule.
pub fn specialized_for_requirements(
    ctx: &VideoContext,
    requirements: &[(ObjectClass, usize)],
) -> Result<Arc<SpecializedNN>> {
    let heads: Vec<(ObjectClass, usize)> = requirements
        .iter()
        .map(|&(class, min_count)| (class, ctx.default_max_count(class, min_count)))
        .collect();
    ctx.specialized_for(&heads)
}

/// Scores every frame of the unseen video with the specialized NN's confidence that it
/// satisfies the requirements, returning `(frame, confidence)` pairs sorted by
/// descending confidence.
///
/// The per-frame scores come from the context's cached batched score index (the
/// "index" the paper's BlazeIt (indexed) variant assumes already exists): the first
/// query per class set builds it with [`SpecializedNN::score_video`] and charges the
/// inference cost to the shared clock; repeated queries rank from the cache for free.
pub fn score_frames(
    ctx: &VideoContext,
    nn: &Arc<SpecializedNN>,
    requirements: &[(ObjectClass, usize)],
) -> Result<Vec<(FrameIndex, f64)>> {
    let head_requirements: Vec<(usize, usize)> = requirements
        .iter()
        .map(|&(class, n)| {
            nn.head_index(class)
                .map(|head| (head, n))
                .ok_or_else(|| BlazeItError::Internal(format!("no head for class {class}")))
        })
        .collect::<Result<_>>()?;
    let scores = ctx.score_index(nn)?;
    let mut scored: Vec<(FrameIndex, f64)> = (0..scores.num_frames())
        .map(|frame| {
            (frame as FrameIndex, scores.requirement_confidence(frame, &head_requirements))
        })
        .collect();
    // Descending by confidence (NaN-safe total order); ties broken by frame index
    // for determinism.
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(scored)
}

/// How many candidate frames the verification loop hands to
/// [`ObjectDetector::detect_batch`] at a time. Small enough that the early-exit
/// (`LIMIT`) semantics keep a tight leash on wasted work, large enough to amortize
/// per-call bookkeeping.
const VERIFY_PREFETCH: usize = 16;

/// Verifies candidate frames (already ranked by confidence) with the detector until
/// `limit` satisfying frames are found, respecting `gap`.
pub fn verify_ranked(
    ctx: &VideoContext,
    ranked: &[(FrameIndex, f64)],
    requirements: &[(ObjectClass, usize)],
    opts: ScrubOptions,
) -> ScrubOutcome {
    verify_ranked_with_budget(ctx, ranked, requirements, opts, None)
}

/// Like [`verify_ranked`], with an optional hard cap on detector invocations (the
/// plan's detection budget).
///
/// Detection runs through a small pipelined prefetch window over
/// [`ObjectDetector::detect_batch`], constructed so the verified frames, their order,
/// and the number of charged detector calls are *identical* to the frame-by-frame
/// loop: a window only ever contains frames the serial loop was guaranteed to reach —
/// each window frame respects the gap against every already-accepted frame *and*
/// against every earlier frame in the same window (so no in-window acceptance can
/// retroactively disqualify it), and the window never exceeds the remaining limit (so
/// the early exit cannot fire mid-window).
pub fn verify_ranked_with_budget(
    ctx: &VideoContext,
    ranked: &[(FrameIndex, f64)],
    requirements: &[(ObjectClass, usize)],
    opts: ScrubOptions,
    budget: Option<u64>,
) -> ScrubOutcome {
    let videos = [VerifyVideo { ctx, requirements }];
    let order: Vec<(usize, FrameIndex)> = ranked.iter().map(|&(frame, _)| (0, frame)).collect();
    let (accepted, calls) = verify_windowed(&videos, &order, opts, budget);
    ScrubOutcome {
        frames: accepted.into_iter().map(|(_, frame)| frame).collect(),
        detection_calls: calls,
        frames_scored: ranked.len() as u64,
    }
}

/// One video's inputs to the shared windowed verification loop.
struct VerifyVideo<'a> {
    ctx: &'a VideoContext,
    requirements: &'a [(ObjectClass, usize)],
}

/// The windowed verification loop shared by single-video ranked verification and the
/// multi-video global-limit merge: walks `order` (a `(video index, frame)` visit
/// sequence), verifying through per-video [`ObjectDetector::detect_batch`] prefetch
/// windows until `opts.limit` frames are accepted or `budget` detector calls are
/// spent. Returns the accepted `(video index, frame)` pairs in acceptance order and
/// the number of charged calls.
///
/// The window rules make the outcome *identical* to a frame-by-frame walk of
/// `order`: a window only ever contains consecutive candidates of one video, each
/// respecting the gap against that video's already-accepted frames **and** against
/// every earlier frame in the same window (so no in-window acceptance can
/// retroactively disqualify it), and the window never exceeds the remaining limit or
/// budget (so the early exit cannot fire mid-window). `GAP` binds within a video
/// only; frames of different videos are never temporally related.
fn verify_windowed(
    videos: &[VerifyVideo<'_>],
    order: &[(usize, FrameIndex)],
    opts: ScrubOptions,
    budget: Option<u64>,
) -> (Vec<(usize, FrameIndex)>, u64) {
    let _verify = obs::span("detect-verify");
    let mut accepted: Vec<(usize, FrameIndex)> = Vec::new();
    let mut accepted_per_video: Vec<Vec<FrameIndex>> = videos.iter().map(|_| Vec::new()).collect();
    let mut calls = 0u64;
    let mut cursor = 0usize;
    let mut window: Vec<FrameIndex> = Vec::with_capacity(VERIFY_PREFETCH);

    while cursor < order.len() && (accepted.len() as u64) < opts.limit {
        let remaining_limit = (opts.limit - accepted.len() as u64) as usize;
        let remaining_budget = match budget {
            Some(b) if b <= calls => break,
            Some(b) => (b - calls) as usize,
            None => usize::MAX,
        };
        let cap = VERIFY_PREFETCH.min(remaining_limit).min(remaining_budget);
        // blazeit-lint: allow(panic-site::index) -- cursor < order.len() is the enclosing loop's
        // guard
        let video_idx = order[cursor].0;
        // blazeit-lint: allow(panic-site::index) -- video_idx comes from order, built by
        // enumerating this same videos slice
        let video = &videos[video_idx];

        window.clear();
        // blazeit-lint: allow(panic-site::index) -- the && short-circuit re-checks cursor <
        // order.len() before indexing
        while cursor < order.len() && window.len() < cap && order[cursor].0 == video_idx {
            // blazeit-lint: allow(panic-site::index) -- the while condition above just re-validated
            // cursor < order.len()
            let frame = order[cursor].1;
            // blazeit-lint: allow(panic-site::index) -- accepted_per_video is sized videos.len()
            // and video_idx enumerates videos
            if !respects_gap(&accepted_per_video[video_idx], frame, opts.gap) {
                // The serial loop skips this frame for free, and would still skip it
                // after any in-window acceptance (the accepted set only grows).
                cursor += 1;
                continue;
            }
            if !respects_gap(&window, frame, opts.gap) {
                // Whether the serial loop detects this frame depends on the outcome
                // of an earlier in-window candidate; stop the window here and
                // re-examine it once those outcomes are known.
                break;
            }
            window.push(frame);
            cursor += 1;
        }
        if window.is_empty() {
            // Everything up to the next video boundary was gap-skipped for free;
            // re-enter the loop so the next candidate starts a fresh window.
            continue;
        }

        let batch = video.ctx.detector().detect_batch(&video.ctx.video(), &window);
        calls += window.len() as u64;
        for (&frame, detections) in window.iter().zip(&batch) {
            let counts = CountVector::from_detections(detections);
            if counts.satisfies_all(video.requirements) {
                accepted.push((video_idx, frame));
                // blazeit-lint: allow(panic-site::index) -- accepted_per_video is sized
                // videos.len() and video_idx enumerates videos
                accepted_per_video[video_idx].push(frame);
            }
        }
    }
    (accepted, calls)
}

/// One video's candidate ranking inside a multi-video scrub: the frames to verify,
/// in the order the per-video strategy would visit them, with the confidence the
/// global interleave sorts by.
struct VideoCandidates<'a> {
    ctx: &'a VideoContext,
    requirements: Vec<(ObjectClass, usize)>,
    /// `(frame, confidence)` in per-video visit order. Ranked sub-plans carry real
    /// NN confidences in `[0, 1]`; scan-fallback sub-plans carry `-1.0` for every
    /// frame, so the global interleave only reaches them after every ranked
    /// candidate of every video — scanning stays the last resort catalog-wide.
    candidates: Vec<(FrameIndex, f64)>,
}

/// Executes a scrubbing query across many videos against one **global** `LIMIT`.
///
/// Phase 1 (parallel): each video builds its candidate ranking — training (or
/// loading) its specialized network and scoring its frames concurrently with the
/// other videos on the persistent worker pool. Phase 2 (deterministic): the
/// per-video rankings are interleaved by descending confidence and verified in that
/// global order, charging the detector through per-video prefetch windows, until the
/// global limit is satisfied — at which point *no* video is charged another call
/// (early cancellation), no matter how many candidates it still had queued. `GAP`
/// constrains frames within a video; frames of different videos are never
/// temporally related.
///
/// An optional `budget` caps total detector invocations across all videos.
pub fn execute_catalog<'a>(
    targets: &[(&'a VideoContext, &'a QueryPlanInfo, &'a VideoPlan)],
    opts: ScrubOptions,
    budget: Option<u64>,
) -> Result<QueryOutput> {
    // Phase 1: per-video candidate rankings, in parallel across contexts.
    let tasks: Vec<Box<dyn FnOnce() -> Result<VideoCandidates<'a>> + Send + 'a>> = targets
        .iter()
        .map(|&(ctx, info, plan)| {
            let task: Box<dyn FnOnce() -> Result<VideoCandidates<'a>> + Send + 'a> =
                Box::new(move || {
                    let requirements = requirement_pairs(&info.requirements);
                    let candidates = match &plan.strategy {
                        PlanStrategy::ScrubRanked => {
                            let nn = ctx.specialized_for(&plan.heads)?;
                            score_frames(ctx, &nn, &requirements)?
                        }
                        PlanStrategy::ScrubScan => {
                            (0..ctx.video().len()).map(|frame| (frame, -1.0f64)).collect()
                        }
                        other => {
                            return Err(BlazeItError::Internal(format!(
                                "scrub::execute_catalog with non-scrub strategy {other:?}"
                            )))
                        }
                    };
                    Ok(VideoCandidates { ctx, requirements, candidates })
                });
            task
        })
        .collect();
    // Catch panics at the task boundary: a panicking ranking task becomes a
    // typed error naming its video instead of poisoning the worker pool.
    let per_video: Vec<VideoCandidates<'_>> = blazeit_nn::parallel::par_run_caught(tasks)
        .into_iter()
        .zip(targets)
        .map(|(outcome, &(ctx, _, _))| match outcome {
            Ok(result) => result,
            Err(caught) => Err(BlazeItError::TaskPanicked {
                task: format!("scrub ranking for video '{}'", ctx.video().name()),
                message: caught.message,
            }),
        })
        .collect::<Result<_>>()?;

    // Global interleave: (confidence desc, video index asc, per-video rank asc).
    // Sorting by (confidence, video, frame) preserves each video's own visit order
    // because rankings are already confidence-descending with frame-ascending ties.
    let mut merged: Vec<(usize, FrameIndex, f64)> = Vec::new();
    for (video_idx, vc) in per_video.iter().enumerate() {
        merged.extend(vc.candidates.iter().map(|&(frame, conf)| (video_idx, frame, conf)));
    }
    merged.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));

    // Phase 2: verify in global order through the shared windowed loop (the same
    // code path single-video ranked verification uses, so the gap / limit / budget
    // window rules cannot diverge between the two).
    let videos: Vec<VerifyVideo<'_>> = per_video
        .iter()
        .map(|vc| VerifyVideo { ctx: vc.ctx, requirements: &vc.requirements })
        .collect();
    let order: Vec<(usize, FrameIndex)> =
        merged.iter().map(|&(video_idx, frame, _)| (video_idx, frame)).collect();
    let (accepted, calls) = verify_windowed(&videos, &order, opts, budget);
    let frames = accepted
        .into_iter()
        .map(|(video_idx, frame)| SourcedFrame {
            // blazeit-lint: allow(panic-site::index) -- video_idx comes from enumerating this same
            // per_video vec
            video: per_video[video_idx].ctx.video().name().to_string(),
            frame,
        })
        .collect();
    Ok(QueryOutput::CatalogFrames { frames, detection_calls: calls })
}

/// The full BlazeIt scrubbing plan: score every frame with the specialized NN, then
/// verify in descending-confidence order.
pub fn blazeit_scrub(
    ctx: &VideoContext,
    nn: &Arc<SpecializedNN>,
    requirements: &[(ObjectClass, usize)],
    opts: ScrubOptions,
) -> Result<ScrubOutcome> {
    let ranked = score_frames(ctx, nn, requirements)?;
    Ok(verify_ranked(ctx, &ranked, requirements, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BlazeIt;
    use crate::result::QueryOutput;
    use blazeit_videostore::DatasetPreset;

    fn engine() -> BlazeIt {
        BlazeIt::for_preset(DatasetPreset::Taipei, 2_500).unwrap()
    }

    #[test]
    fn scrub_returns_only_true_positives() {
        let e = engine();
        let reqs = [(ObjectClass::Car, 2usize)];
        let nn = specialized_for_requirements(&e, &reqs).unwrap();
        let outcome = blazeit_scrub(&e, &nn, &reqs, ScrubOptions { limit: 5, gap: 10 }).unwrap();
        assert!(outcome.frames.len() <= 5);
        assert_eq!(outcome.frames_scored, e.video().len());
        // Every returned frame must genuinely satisfy the predicate according to the
        // detector (which is exactly how they were verified).
        for &frame in &outcome.frames {
            let dets = e.detector().detect(&e.video(), frame);
            let counts = CountVector::from_detections(&dets);
            assert!(counts.satisfies_all(&reqs), "frame {frame} fails the predicate");
        }
        // GAP respected.
        for (i, &a) in outcome.frames.iter().enumerate() {
            for &b in &outcome.frames[i + 1..] {
                assert!(a.abs_diff(b) >= 10);
            }
        }
    }

    #[test]
    fn blazeit_scrub_uses_fewer_detector_calls_than_baselines_for_rare_events() {
        let e = engine();
        // A moderately rare event: at least 3 cars simultaneously.
        let reqs = [(ObjectClass::Car, 3usize)];
        let opts = ScrubOptions { limit: 3, gap: 30 };
        let nn = specialized_for_requirements(&e, &reqs).unwrap();
        let blazeit = blazeit_scrub(&e, &nn, &reqs, opts).unwrap();
        let (naive_frames, naive_calls) =
            baselines::naive_scrub(&e, &reqs, opts.limit, opts.gap).unwrap();
        if blazeit.frames.len() == opts.limit as usize && naive_frames.len() == opts.limit as usize
        {
            assert!(
                blazeit.detection_calls <= naive_calls,
                "BlazeIt used {} detector calls, naive used {}",
                blazeit.detection_calls,
                naive_calls
            );
        }
    }

    #[test]
    fn scoring_is_ranked_descending() {
        let e = engine();
        let reqs = [(ObjectClass::Car, 1usize)];
        let nn = specialized_for_requirements(&e, &reqs).unwrap();
        let ranked = score_frames(&e, &nn, &reqs).unwrap();
        assert_eq!(ranked.len(), e.video().len() as usize);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn query_with_no_training_examples_falls_back_to_scan() {
        let e = engine();
        // 50 simultaneous cars never happens in the training data.
        let result = e
            .query(
                "SELECT timestamp FROM taipei GROUP BY timestamp \
                 HAVING SUM(class='car') >= 50 LIMIT 2",
            )
            .unwrap();
        match result.output {
            QueryOutput::Frames { frames, detection_calls } => {
                assert!(frames.is_empty());
                // The fallback scanned the whole video looking for the event.
                assert_eq!(detection_calls, e.video().len());
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn multi_class_scrub_query_end_to_end() {
        let e = engine();
        let result = e
            .query(
                "SELECT timestamp FROM taipei GROUP BY timestamp \
                 HAVING SUM(class='bus')>=1 AND SUM(class='car')>=1 LIMIT 3 GAP 60",
            )
            .unwrap();
        match result.output {
            QueryOutput::Frames { frames, .. } => {
                for &frame in &frames {
                    let dets = e.detector().detect(&e.video(), frame);
                    let counts = CountVector::from_detections(&dets);
                    assert!(counts.at_least(ObjectClass::Bus, 1));
                    assert!(counts.at_least(ObjectClass::Car, 1));
                }
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    /// The frame-by-frame loop the prefetch window must be indistinguishable from.
    fn verify_ranked_serial_reference(
        ctx: &VideoContext,
        ranked: &[(FrameIndex, f64)],
        requirements: &[(ObjectClass, usize)],
        opts: ScrubOptions,
    ) -> ScrubOutcome {
        let video = ctx.video();
        let video = &*video;
        let mut accepted: Vec<FrameIndex> = Vec::new();
        let mut calls = 0u64;
        for &(frame, _confidence) in ranked {
            if accepted.len() as u64 >= opts.limit {
                break;
            }
            if !respects_gap(&accepted, frame, opts.gap) {
                continue;
            }
            let detections = ctx.detector().detect(video, frame);
            calls += 1;
            let counts = CountVector::from_detections(&detections);
            if counts.satisfies_all(requirements) {
                accepted.push(frame);
            }
        }
        ScrubOutcome {
            frames: accepted,
            detection_calls: calls,
            frames_scored: ranked.len() as u64,
        }
    }

    #[test]
    fn batched_verification_matches_serial_loop_exactly() {
        // Two identical engines (deterministic substrate): one verifies through the
        // pipelined detect_batch window, the other through the frame-by-frame
        // reference. Returned frames, order, call counts, and charged detection
        // seconds must all agree — across gap/limit combinations that exercise
        // window truncation, pairwise-gap breaks, and early exit.
        let batched_engine = engine();
        let serial_engine = engine();
        for (min_count, limit, gap) in
            [(1usize, 5u64, 0u64), (2, 5, 10), (2, 10, 300), (3, 3, 30), (1, 40, 900)]
        {
            let reqs = [(ObjectClass::Car, min_count)];
            let opts = ScrubOptions { limit, gap };
            let nn_b = specialized_for_requirements(&batched_engine, &reqs).unwrap();
            let ranked_b = score_frames(&batched_engine, &nn_b, &reqs).unwrap();
            let nn_s = specialized_for_requirements(&serial_engine, &reqs).unwrap();
            let ranked_s = score_frames(&serial_engine, &nn_s, &reqs).unwrap();
            assert_eq!(ranked_b, ranked_s, "identical engines must rank identically");

            let before_b = batched_engine.clock().breakdown().detection;
            let batched = verify_ranked(&batched_engine, &ranked_b, &reqs, opts);
            let charged_b = batched_engine.clock().breakdown().detection - before_b;

            let before_s = serial_engine.clock().breakdown().detection;
            let serial = verify_ranked_serial_reference(&serial_engine, &ranked_s, &reqs, opts);
            let charged_s = serial_engine.clock().breakdown().detection - before_s;

            assert_eq!(batched.frames, serial.frames, "limit={limit} gap={gap}");
            assert_eq!(batched.detection_calls, serial.detection_calls, "limit={limit} gap={gap}");
            assert!(
                (charged_b - charged_s).abs() < 1e-9,
                "charged detection time diverged: {charged_b} vs {charged_s}"
            );
        }
    }

    #[test]
    fn budgeted_verification_stops_at_the_cap() {
        let e = engine();
        let reqs = [(ObjectClass::Car, 3usize)];
        let nn = specialized_for_requirements(&e, &reqs).unwrap();
        let ranked = score_frames(&e, &nn, &reqs).unwrap();
        let opts = ScrubOptions { limit: 50, gap: 0 };
        let unbudgeted = verify_ranked(&e, &ranked, &reqs, opts);
        let capped = verify_ranked_with_budget(&e, &ranked, &reqs, opts, Some(7));
        assert!(capped.detection_calls <= 7);
        assert!(capped.detection_calls <= unbudgeted.detection_calls);
        // The budgeted run is a prefix of the unbudgeted one.
        assert_eq!(
            capped.frames[..],
            unbudgeted.frames[..capped.frames.len().min(unbudgeted.frames.len())]
        );
    }

    #[test]
    fn limit_zero_returns_nothing() {
        let e = engine();
        let reqs = [(ObjectClass::Car, 1usize)];
        let nn = specialized_for_requirements(&e, &reqs).unwrap();
        let outcome = blazeit_scrub(&e, &nn, &reqs, ScrubOptions { limit: 0, gap: 0 }).unwrap();
        assert!(outcome.frames.is_empty());
        assert_eq!(outcome.detection_calls, 0);
    }
}
