//! Runtime accounting and comparison helpers used by tests and experiment harnesses.

use blazeit_detect::clock::CostBreakdown;
use serde::{Deserialize, Serialize};

/// A named runtime measurement (one bar of a paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Name of the method / plan (e.g. `"naive"`, `"blazeit"`).
    pub name: String,
    /// Simulated runtime in seconds (decode excluded, as in the paper).
    pub runtime_secs: f64,
    /// Number of object-detection invocations.
    pub detection_calls: u64,
    /// The full cost breakdown.
    pub cost: CostBreakdown,
}

impl RuntimeReport {
    /// Builds a report from a cost breakdown delta.
    pub fn from_cost(name: impl Into<String>, cost: CostBreakdown, detection_calls: u64) -> Self {
        RuntimeReport {
            name: name.into(),
            runtime_secs: cost.total() - cost.decode,
            detection_calls,
            cost,
        }
    }

    /// Runtime excluding training time (the "no train" / "indexed" variants).
    pub fn runtime_excluding_training(&self) -> f64 {
        self.runtime_secs - self.cost.training
    }

    /// The speedup of this report relative to a baseline runtime.
    pub fn speedup_vs(&self, baseline_runtime_secs: f64) -> f64 {
        if self.runtime_secs <= 0.0 {
            f64::INFINITY
        } else {
            baseline_runtime_secs / self.runtime_secs
        }
    }
}

/// Formats a set of reports as the "runtime (s) / speedup" rows the paper's figures
/// show, relative to the first entry (the naive baseline by convention).
pub fn format_speedup_table(reports: &[RuntimeReport]) -> String {
    let mut out = String::new();
    let baseline = reports.first().map(|r| r.runtime_secs).unwrap_or(1.0);
    out.push_str(&format!(
        "{:<24} {:>14} {:>14} {:>12}\n",
        "method", "runtime (s)", "det. calls", "speedup"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<24} {:>14.1} {:>14} {:>11.1}x\n",
            r.name,
            r.runtime_secs,
            r.detection_calls,
            r.speedup_vs(baseline)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(detection: f64, training: f64, decode: f64) -> CostBreakdown {
        CostBreakdown { detection, training, decode, ..CostBreakdown::default() }
    }

    #[test]
    fn report_excludes_decode() {
        let r = RuntimeReport::from_cost("x", cost(10.0, 2.0, 100.0), 30);
        assert!((r.runtime_secs - 12.0).abs() < 1e-12);
        assert!((r.runtime_excluding_training() - 10.0).abs() < 1e-12);
        assert_eq!(r.detection_calls, 30);
    }

    #[test]
    fn speedup_computation() {
        let naive = RuntimeReport::from_cost("naive", cost(1000.0, 0.0, 0.0), 3000);
        let fast = RuntimeReport::from_cost("blazeit", cost(10.0, 0.0, 0.0), 30);
        assert!((fast.speedup_vs(naive.runtime_secs) - 100.0).abs() < 1e-9);
        let zero = RuntimeReport::from_cost("free", CostBreakdown::default(), 0);
        assert!(zero.speedup_vs(naive.runtime_secs).is_infinite());
    }

    #[test]
    fn table_formatting_contains_all_methods() {
        let reports = vec![
            RuntimeReport::from_cost("naive", cost(100.0, 0.0, 0.0), 300),
            RuntimeReport::from_cost("blazeit", cost(1.0, 0.5, 0.0), 3),
        ];
        let table = format_speedup_table(&reports);
        assert!(table.contains("naive"));
        assert!(table.contains("blazeit"));
        assert!(table.contains("speedup"));
        // Two data rows plus a header.
        assert_eq!(table.lines().count(), 3);
    }
}
