//! Sessions and prepared queries: the planner / executor split.
//!
//! A [`Session`] is a lightweight query handle over a [`Catalog`].
//! [`Session::prepare`] parses a FrameQL string, routes it to the registered video(s)
//! named in its `FROM` clause — one video, an explicit `FROM a, b, c` list, or
//! `FROM *` for the whole catalog — analyzes it per video, and plans it, all without
//! charging the simulated clock. The returned [`PreparedQuery`] holds a [`QueryPlan`]
//! with one sub-plan per video that the caller can inspect
//! ([`PreparedQuery::plan`]), render ([`PreparedQuery::explain`]), and override
//! ([`PreparedQuery::with_options`], [`PreparedQuery::with_budget`]) before paying
//! for execution with [`PreparedQuery::run`].
//!
//! Multi-video queries execute their per-video sub-queries **in parallel** across
//! [`VideoContext`]s (on the persistent worker pool of
//! [`blazeit_nn::parallel`]) and merge results with statistically honest semantics:
//! aggregates sum per-video estimates and compose their confidence intervals
//! (root-sum-square of independent standard errors), scrubbing interleaves
//! per-video rankings against one global `LIMIT` with early cancellation, and
//! selection concatenates rows tagged with their source video (see
//! [`MergeSemantics`](crate::plan::MergeSemantics)).
//!
//! `EXPLAIN <query>` flows through the same path: the prepared query is marked
//! explain-only and [`PreparedQuery::run`] returns the rendered plan as
//! [`QueryOutput::Explain`] with zero simulated cost.

// blazeit-lint: allow-file(panic-site::index) -- PreparedQuery invariant: targets and subplans are
// built together by plan(), non-empty and of equal length

use crate::aggregate;
use crate::catalog::Catalog;
use crate::context::VideoContext;
use crate::fault;
use crate::obs;
use crate::plan::{plan_query, QueryPlan};
use crate::result::{QueryOutput, QueryResult, SourcedRow, VideoAggregate};
use crate::scrub;
use crate::select::{self, SelectionOptions};
use crate::{BlazeItError, Result};
use blazeit_frameql::ast::FromClause;
use blazeit_frameql::query::{analyze, QueryClass, QueryPlanInfo};
use blazeit_frameql::{parse_query, Query};
use std::sync::Arc;
use std::time::Instant;

/// A query session over a catalog of registered videos.
#[derive(Debug, Clone, Copy)]
pub struct Session<'a> {
    catalog: &'a Catalog,
}

/// One video a prepared query spans: its context plus the query's analysis against
/// that video's UDF registry. The context is an `Arc` snapshot out of the shared
/// catalog, so a prepared query stays valid (and runnable from any thread) no
/// matter what is registered afterwards.
#[derive(Debug)]
struct QueryTarget {
    ctx: Arc<VideoContext>,
    info: QueryPlanInfo,
}

impl<'a> Session<'a> {
    pub(crate) fn new(catalog: &'a Catalog) -> Session<'a> {
        Session { catalog }
    }

    /// The catalog this session queries.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Parses, routes, analyzes and plans a FrameQL query without executing it (and
    /// without charging the simulated clock).
    ///
    /// The `FROM` clause decides the fan-out: a single name routes to that video, a
    /// list routes to each named video in query order, and `*` routes to every
    /// registered video in registration order. Unknown names fail with
    /// [`BlazeItError::UnknownVideo`] (including a nearest-name suggestion).
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery> {
        let parse_started = Instant::now();
        let parsed = parse_query(sql)?;
        let parse_wall_secs = parse_started.elapsed().as_secs_f64();
        let plan_started = Instant::now();
        let contexts: Vec<Arc<VideoContext>> = match &parsed.from {
            FromClause::All => {
                let contexts = self.catalog.contexts();
                if contexts.is_empty() {
                    return Err(BlazeItError::Unsupported(
                        "FROM * spans every registered video, but the catalog is empty; \
                         register a video first"
                            .into(),
                    ));
                }
                contexts
            }
            FromClause::Videos(names) => {
                let mut contexts: Vec<Arc<VideoContext>> = Vec::with_capacity(names.len());
                for name in names {
                    let ctx = self.catalog.context(name)?;
                    // The parser rejects duplicates it can see; this guards ASTs
                    // built programmatically (two spellings of one stream).
                    if contexts.iter().any(|c| Arc::ptr_eq(c, &ctx)) {
                        return Err(BlazeItError::Unsupported(format!(
                            "video '{name}' appears more than once in the FROM list"
                        )));
                    }
                    contexts.push(ctx);
                }
                contexts
            }
        };
        let targets: Vec<QueryTarget> = contexts
            .into_iter()
            .map(|ctx| {
                let info = analyze(&parsed, &ctx.udfs())?;
                Ok(QueryTarget { ctx, info })
            })
            .collect::<Result<_>>()?;
        let pairs: Vec<(&VideoContext, &QueryPlanInfo)> =
            targets.iter().map(|t| (t.ctx.as_ref(), &t.info)).collect();
        // `FROM *` keeps catalog (fan-out) semantics even over a one-video catalog,
        // so the query's result shape never depends on how many videos happen to be
        // registered.
        let fan_out = parsed.from.is_all() || targets.len() > 1;
        let plan = plan_query(&pairs, fan_out)?;
        Ok(PreparedQuery {
            targets,
            sql: sql.to_string(),
            query: parsed,
            plan,
            parse_wall_secs,
            plan_wall_secs: plan_started.elapsed().as_secs_f64(),
            admission_wait_secs: None,
        })
    }

    /// Convenience: prepare and immediately run a query with its default plan.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.prepare(sql)?.run()
    }
}

/// A planned query, ready to inspect, override, and run.
///
/// Owns `Arc` snapshots of its target contexts, so it has no borrow of the
/// session or catalog: it can be moved across threads and run after (or while)
/// the catalog changes under it.
#[derive(Debug)]
pub struct PreparedQuery {
    targets: Vec<QueryTarget>,
    sql: String,
    query: Query,
    plan: QueryPlan,
    /// Wall-clock seconds `prepare` spent parsing — surfaced as the `parse`
    /// span of an `EXPLAIN ANALYZE` trace (the collector is installed at run
    /// time, after these stages already happened).
    parse_wall_secs: f64,
    /// Wall-clock seconds `prepare` spent routing, analyzing, and planning —
    /// the `plan` span of an `EXPLAIN ANALYZE` trace.
    plan_wall_secs: f64,
    /// Wall-clock seconds the serving layer spent waiting for admission before
    /// calling [`PreparedQuery::run`] — surfaced as the `admission wait` span
    /// of an `EXPLAIN ANALYZE` trace. `None` for queries that never passed
    /// through admission control.
    admission_wait_secs: Option<f64>,
}

impl PreparedQuery {
    /// The first (for single-video queries: the only) video context the query was
    /// routed to. Multi-video queries span every context in [`PreparedQuery::contexts`].
    pub fn context(&self) -> &VideoContext {
        self.targets[0].ctx.as_ref()
    }

    /// Every video context the query spans, in `FROM`-clause order.
    pub fn contexts(&self) -> impl Iterator<Item = &VideoContext> + '_ {
        self.targets.iter().map(|t| t.ctx.as_ref())
    }

    /// The parsed query AST.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The analyzed plan information (classification, requirements, constraints)
    /// for the first video. Analysis differs between videos only through their UDF
    /// registries; the classification is identical across the fan-out.
    pub fn info(&self) -> &QueryPlanInfo {
        &self.targets[0].info
    }

    /// The resolved plan: one sub-plan per video plus the merge semantics.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Mutable access to the plan — the full override hatch for harnesses.
    pub fn plan_mut(&mut self) -> &mut QueryPlan {
        &mut self.plan
    }

    /// Whether this statement was an `EXPLAIN` (runs free, returns the plan).
    /// True for `EXPLAIN ANALYZE` too — check [`PreparedQuery::is_analyze`]
    /// to distinguish the variant that executes.
    pub fn is_explain(&self) -> bool {
        self.query.explain
    }

    /// Whether this statement was an `EXPLAIN ANALYZE` (executes the query
    /// under a trace collector and returns the recorded span tree).
    pub fn is_analyze(&self) -> bool {
        self.query.analyze
    }

    /// Replaces the selection filter options (which inferred filters a selection
    /// plan may use) on **every** sub-plan. No effect on aggregate / scrubbing
    /// strategies.
    pub fn with_options(mut self, options: SelectionOptions) -> PreparedQuery {
        for sub in &mut self.plan.subplans {
            sub.selection = options;
        }
        self
    }

    /// Caps the number of object-detector invocations the plan may spend.
    ///
    /// The cap binds adaptive sampling (aggregates) and ranked verification
    /// (scrubbing); exact scans and selection scans are not truncated, since cutting
    /// them off would silently change the result's meaning. For a multi-video
    /// aggregate the cap applies per video (each sampler is independent); for a
    /// multi-video scrub it caps the *global* verification loop, matching the
    /// global `LIMIT`. The executors fold the budget into their own knobs at run
    /// time, so later `plan_mut` edits compose.
    pub fn with_budget(mut self, max_detection_calls: u64) -> PreparedQuery {
        for sub in &mut self.plan.subplans {
            sub.detection_budget = Some(max_detection_calls);
        }
        self
    }

    /// Records how long the serving layer waited for admission before running
    /// this query, so an `EXPLAIN ANALYZE` trace can surface the wait as its
    /// own span (the wait happens before the collector is installed).
    pub fn set_admission_wait(&mut self, wait_secs: f64) {
        self.admission_wait_secs = Some(wait_secs);
    }

    /// The rendered plan, exactly what `EXPLAIN <query>` returns.
    pub fn explain(&self) -> String {
        self.plan.to_string()
    }

    /// Executes the plan (or, for `EXPLAIN`, returns the rendered plan for free;
    /// for `EXPLAIN ANALYZE`, executes under a trace collector and returns the
    /// recorded span tree).
    pub fn run(&self) -> Result<QueryResult> {
        let started = Instant::now();
        let clock = self.targets[0].ctx.clock();

        if self.query.analyze {
            return self.run_analyze(started);
        }

        let cost_before = clock.breakdown();
        let output = if self.query.explain {
            QueryOutput::Explain { plan: self.plan.clone() }
        } else {
            self.reject_continuous_clauses()?;
            self.execute()?
        };

        let cost = clock.breakdown().since(&cost_before);
        Ok(QueryResult {
            query: self.sql.clone(),
            output,
            cost,
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }

    fn reject_continuous_clauses(&self) -> Result<()> {
        if self.query.window.is_some() || self.query.every.is_some() {
            return Err(BlazeItError::Unsupported(
                "WINDOW/EVERY are continuous-query clauses; subscribe the query \
                 with Session::subscribe instead of running it one-shot"
                    .into(),
            ));
        }
        Ok(())
    }

    /// `EXPLAIN ANALYZE`: executes the plan with a trace collector installed,
    /// then returns the assembled span tree (the executed payload itself is
    /// discarded, like the rows of a PostgreSQL `EXPLAIN ANALYZE`).
    ///
    /// The result's `cost` is defined as [`QueryTrace::total_cost`] — the fold
    /// of the per-span deltas in span order, which the collector merged back
    /// into the ambient ledger with the identical fold — so the rendered trace
    /// total always equals the result's cost **bitwise**, and both equal what
    /// the session's ledger was charged.
    ///
    /// [`QueryTrace::total_cost`]: crate::obs::QueryTrace::total_cost
    fn run_analyze(&self, started: Instant) -> Result<QueryResult> {
        self.reject_continuous_clauses()?;
        let clock = self.targets[0].ctx.clock();
        let guard = obs::install_collector(Arc::clone(clock));
        let outcome = {
            let _root = obs::span("query");
            obs::record_span("parse", self.parse_wall_secs);
            obs::record_span("plan", self.plan_wall_secs);
            if let Some(wait) = self.admission_wait_secs {
                obs::record_span("admission wait", wait);
            }
            let result = self.execute();
            if let Ok(output) = &result {
                obs::count(obs::COUNTER_DETECTOR_CALLS, output.detection_calls());
            }
            result
        };
        let trace = guard.finish();
        outcome?;
        let cost = trace.total_cost();
        Ok(QueryResult {
            query: self.sql.clone(),
            output: QueryOutput::ExplainAnalyze { plan: self.plan.clone(), trace },
            cost,
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }

    fn execute(&self) -> Result<QueryOutput> {
        if !self.plan.is_fan_out() {
            let target = &self.targets[0];
            let sub = &self.plan.subplans[0];
            let _video = obs::span_with(|| format!("video '{}'", target.ctx.video().name()));
            return match &target.info.class {
                QueryClass::Aggregate { .. } => aggregate::execute(&target.ctx, &target.info, sub),
                QueryClass::Scrub => scrub::execute(&target.ctx, &target.info, sub),
                QueryClass::Select | QueryClass::Exhaustive => {
                    select::execute(&target.ctx, &self.query, &target.info, sub)
                }
            };
        }
        match &self.targets[0].info.class {
            QueryClass::Aggregate { .. } => self.execute_catalog_aggregate(),
            QueryClass::Scrub => self.execute_catalog_scrub(),
            QueryClass::Select | QueryClass::Exhaustive => self.execute_catalog_selection(),
        }
    }

    /// Runs one closure per video concurrently on the persistent worker pool,
    /// returning results in `FROM`-clause order. Each video's sub-query is
    /// deterministic in isolation (its own seeds, caches, and frames), so the
    /// fan-out's results are independent of scheduling.
    ///
    /// Panics are caught at the task boundary: a panicking sub-query becomes a
    /// typed [`BlazeItError::TaskPanicked`] naming its video, sibling
    /// sub-queries finish normally, and the worker pool stays healthy.
    fn fan_out<T: Send>(
        &self,
        per_video: impl Fn(usize) -> Result<T> + Send + Sync,
    ) -> Vec<Result<T>> {
        let per_video = &per_video;
        // Fan-out tasks run on pool workers, whose thread-local tracing state
        // is empty: capture this thread's state (if a trace is active) and
        // re-install it inside each task, so per-video spans attach under the
        // submitting query's span — the same trick the pool itself plays with
        // the SimClock charge tag.
        let trace = obs::trace_context();
        let trace = &trace;
        let tasks: Vec<Box<dyn FnOnce() -> Result<T> + Send + '_>> = (0..self.targets.len())
            .map(|idx| {
                let task: Box<dyn FnOnce() -> Result<T> + Send + '_> = Box::new(move || {
                    let body = || {
                        let _video = obs::span_with(|| {
                            format!("video '{}'", self.targets[idx].ctx.video().name())
                        });
                        if fault::inject(fault::FaultSite::ParTask).is_some() {
                            // blazeit-lint: allow(panic-site) -- deliberate chaos panic: the
                            // injected fault must explode inside the task so the pool
                            // boundary's catch_unwind handling is what gets exercised.
                            panic!("injected fault: parallel sub-query panic");
                        }
                        per_video(idx)
                    };
                    match trace {
                        Some(trace) => trace.enter(body),
                        None => body(),
                    }
                });
                task
            })
            .collect();
        blazeit_nn::parallel::par_run_caught(tasks)
            .into_iter()
            .enumerate()
            .map(|(idx, outcome)| match outcome {
                Ok(result) => result,
                Err(caught) => Err(BlazeItError::TaskPanicked {
                    task: format!("sub-query for video '{}'", self.targets[idx].ctx.video().name()),
                    message: caught.message,
                }),
            })
            .collect()
    }

    /// Multi-video aggregate: per-video estimates in parallel, then the catalog-wide
    /// sum with a composed (root-sum-square) standard error. Summing is statistically
    /// honest because each video's estimator is unbiased for its own total and the
    /// samplers draw independently; independence also makes the composed interval
    /// never wider than the sum of the per-video intervals.
    fn execute_catalog_aggregate(&self) -> Result<QueryOutput> {
        let outputs = self.fan_out(|idx| {
            let target = &self.targets[idx];
            aggregate::execute(&target.ctx, &target.info, &self.plan.subplans[idx])
        });
        let _merge = obs::span("merge");
        let mut per_video = Vec::with_capacity(outputs.len());
        for (target, output) in self.targets.iter().zip(outputs) {
            match output? {
                QueryOutput::Aggregate { value, standard_error, detection_calls, method } => {
                    per_video.push(VideoAggregate {
                        video: target.ctx.video().name().to_string(),
                        value,
                        standard_error,
                        detection_calls,
                        method,
                    });
                }
                other => {
                    return Err(BlazeItError::Internal(format!(
                        "aggregate sub-query returned non-aggregate output {other:?}"
                    )))
                }
            }
        }
        let value = per_video.iter().map(|v| v.value).sum();
        let detection_calls = per_video.iter().map(|v| v.detection_calls).sum();
        let sum_of_squares: f64 =
            per_video.iter().filter_map(|v| v.standard_error).map(|se| se * se).sum();
        let standard_error = if per_video.iter().any(|v| v.standard_error.is_some()) {
            Some(sum_of_squares.sqrt())
        } else {
            None
        };
        Ok(QueryOutput::CatalogAggregate { value, standard_error, detection_calls, per_video })
    }

    /// Multi-video scrub: parallel per-video candidate rankings, then one global
    /// `LIMIT` over the confidence-interleaved candidates (see
    /// [`scrub::execute_catalog`]).
    fn execute_catalog_scrub(&self) -> Result<QueryOutput> {
        let triples: Vec<(&VideoContext, &QueryPlanInfo, &crate::plan::VideoPlan)> = self
            .targets
            .iter()
            .zip(&self.plan.subplans)
            .map(|(t, sub)| (t.ctx.as_ref(), &t.info, sub))
            .collect();
        let opts = self.plan.subplans[0].scrub.ok_or_else(|| {
            BlazeItError::Internal("catalog scrub plan carries no scrub options".into())
        })?;
        let budget = self.plan.subplans[0].detection_budget;
        // The limit, gap, and budget are global to the interleaved verification, so
        // a per-sub-plan override that diverges cannot be honored — reject it
        // loudly instead of silently running with one sub-plan's values.
        for sub in &self.plan.subplans[1..] {
            if sub.scrub != Some(opts) || sub.detection_budget != budget {
                return Err(BlazeItError::Unsupported(format!(
                    "a multi-video scrub runs one global LIMIT/GAP and detector \
                     budget, but sub-plan '{}' diverges from '{}'; set identical \
                     scrub options and budget on every sub-plan",
                    sub.video, self.plan.subplans[0].video
                )));
            }
        }
        scrub::execute_catalog(&triples, opts, budget)
    }

    /// Multi-video selection: per-video filtered scans in parallel, rows
    /// concatenated in `FROM`-clause order and tagged with their source video.
    fn execute_catalog_selection(&self) -> Result<QueryOutput> {
        let outputs = self.fan_out(|idx| {
            let target = &self.targets[idx];
            select::execute(&target.ctx, &self.query, &target.info, &self.plan.subplans[idx])
        });
        let _merge = obs::span("merge");
        let mut all_rows: Vec<SourcedRow> = Vec::new();
        let mut detection_calls = 0u64;
        for (target, output) in self.targets.iter().zip(outputs) {
            match output? {
                QueryOutput::Rows { rows, detection_calls: calls } => {
                    let video = target.ctx.video().name().to_string();
                    all_rows.extend(
                        rows.into_iter().map(|row| SourcedRow { video: video.clone(), row }),
                    );
                    detection_calls += calls;
                }
                other => {
                    return Err(BlazeItError::Internal(format!(
                        "selection sub-query returned non-row output {other:?}"
                    )))
                }
            }
        }
        Ok(QueryOutput::CatalogRows { rows: all_rows, detection_calls })
    }
}
