//! Sessions and prepared queries: the planner / executor split.
//!
//! A [`Session`] is a lightweight query handle over a [`Catalog`].
//! [`Session::prepare`] parses a FrameQL string, routes it to the registered video
//! named in its `FROM` clause, analyzes it, and plans it — all without charging the
//! simulated clock — returning a [`PreparedQuery`] whose [`QueryPlan`] the caller can
//! inspect ([`PreparedQuery::plan`]), render ([`PreparedQuery::explain`]), and
//! override ([`PreparedQuery::with_options`], [`PreparedQuery::with_budget`]) before
//! paying for execution with [`PreparedQuery::run`].
//!
//! `EXPLAIN <query>` flows through the same path: the prepared query is marked
//! explain-only and [`PreparedQuery::run`] returns the rendered plan as
//! [`QueryOutput::Explain`] with zero simulated cost.

use crate::aggregate;
use crate::catalog::Catalog;
use crate::context::VideoContext;
use crate::plan::{plan_query, QueryPlan};
use crate::result::{QueryOutput, QueryResult};
use crate::scrub;
use crate::select::{self, SelectionOptions};
use crate::Result;
use blazeit_frameql::query::{analyze, QueryClass, QueryPlanInfo};
use blazeit_frameql::{parse_query, Query};
use std::time::Instant;

/// A query session over a catalog of registered videos.
#[derive(Debug, Clone, Copy)]
pub struct Session<'a> {
    catalog: &'a Catalog,
}

impl<'a> Session<'a> {
    pub(crate) fn new(catalog: &'a Catalog) -> Session<'a> {
        Session { catalog }
    }

    /// The catalog this session queries.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Parses, routes, analyzes and plans a FrameQL query without executing it (and
    /// without charging the simulated clock).
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery<'a>> {
        let parsed = parse_query(sql)?;
        let ctx = self.catalog.context(&parsed.from)?;
        let info = analyze(&parsed, ctx.udfs())?;
        let plan = plan_query(ctx, &info)?;
        Ok(PreparedQuery { ctx, sql: sql.to_string(), query: parsed, info, plan })
    }

    /// Convenience: prepare and immediately run a query with its default plan.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.prepare(sql)?.run()
    }
}

/// A planned query, ready to inspect, override, and run.
#[derive(Debug)]
pub struct PreparedQuery<'a> {
    ctx: &'a VideoContext,
    sql: String,
    query: Query,
    info: QueryPlanInfo,
    plan: QueryPlan,
}

impl<'a> PreparedQuery<'a> {
    /// The video context the query was routed to.
    pub fn context(&self) -> &'a VideoContext {
        self.ctx
    }

    /// The parsed query AST.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The analyzed plan information (classification, requirements, constraints).
    pub fn info(&self) -> &QueryPlanInfo {
        &self.info
    }

    /// The resolved plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Mutable access to the plan — the full override hatch for harnesses.
    pub fn plan_mut(&mut self) -> &mut QueryPlan {
        &mut self.plan
    }

    /// Whether this statement was an `EXPLAIN` (runs free, returns the plan).
    pub fn is_explain(&self) -> bool {
        self.query.explain
    }

    /// Replaces the selection filter options (which inferred filters a selection
    /// plan may use). No effect on aggregate / scrubbing strategies.
    pub fn with_options(mut self, options: SelectionOptions) -> PreparedQuery<'a> {
        self.plan.selection = options;
        self
    }

    /// Caps the number of object-detector invocations the plan may spend.
    ///
    /// The cap binds adaptive sampling (aggregates) and ranked verification
    /// (scrubbing); exact scans and selection scans are not truncated, since cutting
    /// them off would silently change the result's meaning. The executors fold the
    /// budget into their own knobs at run time, so later `plan_mut` edits compose.
    pub fn with_budget(mut self, max_detection_calls: u64) -> PreparedQuery<'a> {
        self.plan.detection_budget = Some(max_detection_calls);
        self
    }

    /// The rendered plan, exactly what `EXPLAIN <query>` returns.
    pub fn explain(&self) -> String {
        self.plan.to_string()
    }

    /// Executes the plan (or, for `EXPLAIN`, returns the rendered plan for free).
    pub fn run(&self) -> Result<QueryResult> {
        let started = Instant::now();
        let clock = self.ctx.clock();
        let cost_before = clock.breakdown();

        let output = if self.query.explain {
            QueryOutput::Explain { plan: self.plan.clone() }
        } else {
            self.execute()?
        };

        let cost = clock.breakdown().since(&cost_before);
        Ok(QueryResult {
            query: self.sql.clone(),
            output,
            cost,
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }

    fn execute(&self) -> Result<QueryOutput> {
        match &self.info.class {
            QueryClass::Aggregate { .. } => aggregate::execute(self.ctx, &self.info, &self.plan),
            QueryClass::Scrub => scrub::execute(self.ctx, &self.info, &self.plan),
            QueryClass::Select | QueryClass::Exhaustive => {
                select::execute(self.ctx, &self.query, &self.info, &self.plan)
            }
        }
    }
}
