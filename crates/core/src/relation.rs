//! Materializing FrameQL rows from detector output.
//!
//! FrameQL's relation is virtual (an unmaterialized view); rows are only created for
//! frames the chosen plan actually inspects. The [`RelationBuilder`] turns one frame's
//! detections into rows, assigning `trackid`s with the motion-IoU tracker. Because
//! plans often subsample frames (temporal filter), the tracker is configured with a
//! maximum frame gap equal to the scan stride so that slow objects keep their identity
//! across skipped frames.

use blazeit_detect::{Detection, IouTracker, SimulatedDetector};
use blazeit_frameql::FrameQlRow;
use blazeit_videostore::{BoundingBox, FrameIndex, Video};

/// Builds FrameQL rows frame by frame, maintaining tracker state across calls.
///
/// Frames must be presented in non-decreasing index order (the natural order of every
/// scan in the engine).
#[derive(Debug)]
pub struct RelationBuilder<'a> {
    detector: &'a SimulatedDetector,
    tracker: IouTracker,
}

impl<'a> RelationBuilder<'a> {
    /// Creates a builder.
    ///
    /// * `iou_threshold` — the tracker's IoU cutoff (0.7 in the paper).
    /// * `scan_stride` — the stride at which frames will be presented, which becomes
    ///   the tracker's allowed frame gap.
    pub fn new(detector: &'a SimulatedDetector, iou_threshold: f32, scan_stride: u64) -> Self {
        RelationBuilder { detector, tracker: IouTracker::new(iou_threshold, scan_stride.max(1)) }
    }

    /// Runs detection on `frame` (optionally restricted to `region`) and materializes
    /// the resulting rows.
    pub fn rows_for_frame(
        &mut self,
        video: &Video,
        frame: FrameIndex,
        region: Option<&BoundingBox>,
    ) -> Vec<FrameQlRow> {
        let detections = self.detector.detect_in_region(video, frame, region);
        self.rows_for_detections(video, frame, &detections)
    }

    /// Materializes rows from already-computed detections for `frame` (the tracker
    /// still updates sequentially). This is how batched scans decouple detection
    /// (one `detect_batch` call per chunk) from entity resolution.
    pub fn rows_for_detections(
        &mut self,
        video: &Video,
        frame: FrameIndex,
        detections: &[Detection],
    ) -> Vec<FrameQlRow> {
        let tracked = self.tracker.update(frame, detections);
        let timestamp = video.timestamp(frame);
        tracked
            .into_iter()
            .map(|t| FrameQlRow {
                timestamp,
                frame,
                class: t.detection.class,
                mask: t.detection.bbox,
                trackid: t.track_id,
                confidence: t.detection.confidence,
                features: t.detection.features,
            })
            .collect()
    }

    /// Number of distinct tracks created so far.
    pub fn tracks_created(&self) -> u64 {
        self.tracker.tracks_created()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlazeItConfig;
    use blazeit_detect::SimClock;
    use blazeit_videostore::{DatasetPreset, ObjectClass, DAY_TEST};

    fn setup() -> (Video, SimulatedDetector) {
        let video = DatasetPreset::Amsterdam.generate_with_frames(DAY_TEST, 2_000).unwrap();
        let config = BlazeItConfig::for_preset(DatasetPreset::Amsterdam);
        let detector = SimulatedDetector::new(
            config.detection_method,
            config.detection_threshold,
            SimClock::new(),
        );
        (video, detector)
    }

    #[test]
    fn rows_carry_schema_fields() {
        let (video, detector) = setup();
        let mut builder = RelationBuilder::new(&detector, 0.7, 1);
        let mut any_rows = false;
        for f in 0..1_000 {
            for row in builder.rows_for_frame(&video, f, None) {
                any_rows = true;
                assert!((row.timestamp - f as f64 / 30.0).abs() < 1e-9);
                assert_eq!(row.frame, f);
                assert!(row.trackid > 0);
                assert!(row.confidence > 0.0);
            }
        }
        assert!(any_rows, "expected at least one detection in 1000 frames");
    }

    #[test]
    fn consecutive_frames_share_track_ids() {
        let (video, detector) = setup();
        let mut builder = RelationBuilder::new(&detector, 0.7, 1);
        // Find a frame with a car and check its track id persists to the next frame.
        let mut persisted = false;
        let mut prev: Vec<FrameQlRow> = Vec::new();
        for f in 0..600 {
            let rows = builder.rows_for_frame(&video, f, None);
            for row in &rows {
                if row.class == ObjectClass::Car
                    && prev.iter().any(|p| p.class == ObjectClass::Car && p.trackid == row.trackid)
                {
                    persisted = true;
                }
            }
            prev = rows;
            if persisted {
                break;
            }
        }
        assert!(persisted, "no car track persisted across consecutive frames");
    }

    #[test]
    fn strided_scans_keep_identity_with_matching_gap() {
        let (video, detector) = setup();
        let stride = 5u64;
        let mut builder = RelationBuilder::new(&detector, 0.5, stride);
        let mut persisted = false;
        let mut prev: Vec<FrameQlRow> = Vec::new();
        let mut f = 0;
        while f < 1_500 {
            let rows = builder.rows_for_frame(&video, f, None);
            for row in &rows {
                if prev.iter().any(|p| p.trackid == row.trackid) {
                    persisted = true;
                }
            }
            prev = rows;
            f += stride;
            if persisted {
                break;
            }
        }
        assert!(persisted, "no track persisted across a strided scan");
        assert!(builder.tracks_created() > 0);
    }

    #[test]
    fn region_restriction_limits_rows() {
        let (video, detector) = setup();
        let region = BoundingBox::new(0.0, 0.0, 400.0, 720.0);
        let mut full_builder = RelationBuilder::new(&detector, 0.7, 1);
        let mut region_builder = RelationBuilder::new(&detector, 0.7, 1);
        let mut full = 0usize;
        let mut restricted = 0usize;
        for f in 0..300 {
            full += full_builder.rows_for_frame(&video, f, None).len();
            let rows = region_builder.rows_for_frame(&video, f, Some(&region));
            for row in &rows {
                assert!(region.contains(&row.mask.center()));
            }
            restricted += rows.len();
        }
        assert!(restricted <= full);
    }
}
