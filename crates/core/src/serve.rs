//! The concurrent query-serving layer: shared-catalog sessions, a coalescing
//! result cache, and plan-cost admission control.
//!
//! A [`Server`] wraps an `Arc<Catalog>` and hands out lightweight
//! [`ServerSession`]s, any number of which may plan and execute FrameQL
//! queries **simultaneously** — the catalog's contexts are `Arc` snapshots
//! behind the sync shim's locks, so no `&mut` appears anywhere on the hot
//! path. Three mechanisms sit between a session and the engine:
//!
//! 1. **Result cache** (`QueryCache`) — completed answers are published
//!    under a [`CacheKey`] combining the *normalized* query text with each
//!    spanned video's `(name, data generation, config fingerprint)`. Stream
//!    ingestion, drift-refresh publication, and UDF registration bump the
//!    generation, so stale entries become unreachable the instant the data
//!    changes — invalidation is precise per video, with no global flush.
//! 2. **Query coalescing** — when an identical query (same cache key) is
//!    already executing, later sessions attach as *waiters* to the one
//!    in-flight computation instead of re-executing it; the computer fans the
//!    answer out to every waiter on publish. `EXPLAIN` reports the
//!    disposition as `cache: hit | miss | coalesced(n waiters)`.
//! 3. **Admission control** (`Admission`) — each cache miss is admitted
//!    against a plan-cost budget in strict FIFO ticket order, bounding how
//!    much estimated simulated cost executes at once while staying fair
//!    (no query can be overtaken, and a query too big for the budget runs
//!    alone rather than starving).
//!
//! # Locking
//!
//! The serving locks are enrolled in [`crate::lockorder::RANKED_LOCKS`]
//! *below* every engine lock — `admission` (rank 0), `serve_cache` (rank 1),
//! `serve_slot` (rank 2) — because a cache miss executes a full query, which
//! acquires the context and stream locks; no serving lock is ever held while
//! calling into the engine. The cache's key map is acquired through
//! `lock_ordered` (runtime + static lint enforcement); the slot and
//! admission mutexes pair with [`Condvar`]s, so they are constructed with
//! [`Mutex::ranked`] and proven orderly by the `blazeit-model` schedule
//! explorer (`crates/model/tests/coalesce_protocol.rs`), which checks the
//! computer / waiter / invalidation protocol across every interleaving.
//!
//! Per-session cost attribution rides on [`SimClock`] charge tags: each
//! session executes under its own tag, worker-pool jobs inherit the
//! submitter's tag, and the per-tag ledgers sum exactly to the global clock.

use crate::catalog::Catalog;
use crate::context::CacheWarmth;
use crate::lockorder::{lock_ordered, RANK_ADMISSION, RANK_SERVE_CACHE, RANK_SERVE_SLOT};
use crate::obs;
use crate::plan::{CacheStatus, PlanStrategy, QueryPlan};
use crate::result::QueryResult;
use crate::session::PreparedQuery;
use crate::sync::{AtomicU64, Condvar, Mutex, Ordering};
use crate::{BlazeItError, Result};
use blazeit_detect::SimClock;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Tunables of the serving layer. The defaults suit tests and the bundled
/// `blazeit-server` binary; saturation benches override them via
/// [`Server::with_config`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Admission budget: the maximum summed plan-cost estimate (unitless,
    /// roughly "simulated seconds") allowed to execute concurrently. A query
    /// whose own estimate exceeds the budget is still admitted — alone — once
    /// it reaches the head of the FIFO queue.
    pub admission_capacity: f64,
    /// Cap on published (completed) cache entries; the oldest completed
    /// entries are evicted first. In-flight computations are never evicted.
    pub max_cached_results: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { admission_capacity: 64.0, max_cached_results: 256 }
    }
}

/// The identity of a cacheable query: the normalized FrameQL text (the parsed
/// AST's canonical debug form, with `EXPLAIN` stripped) plus, for every video
/// the `FROM` clause spans, `(normalized name, data generation, config
/// fingerprint)`. Two queries share a key exactly when they would compute the
/// same answer from the same data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonicalized query (AST debug form with `explain` forced off, so
    /// `EXPLAIN q` probes the entry `q` would populate).
    sql: String,
    /// Per-video `(name, data_generation, config_fingerprint)` triples in
    /// `FROM`-clause order.
    videos: Vec<(String, u64, u64)>,
}

impl CacheKey {
    /// Builds the key for a prepared query against its snapshot of the
    /// catalog. Generations are read here, at plan time: a later bump makes
    /// this key unreachable for new queries, which is the invalidation.
    fn for_query(prepared: &PreparedQuery) -> CacheKey {
        let mut normalized = prepared.query().clone();
        normalized.explain = false;
        normalized.analyze = false;
        let videos = prepared
            .contexts()
            .map(|ctx| {
                (ctx.video().name().to_string(), ctx.data_generation(), ctx.config_fingerprint())
            })
            .collect();
        CacheKey { sql: format!("{normalized:?}"), videos }
    }
}

/// One in-flight (or completed) computation the cache coalesces around.
struct Slot {
    /// Protocol state, paired with `ready`. Ranked `serve_slot` so the model
    /// shim's rank oracle checks every interleaving; locked directly (not via
    /// [`lock_ordered`]) because [`Condvar::wait`] needs the raw guard.
    state: Mutex<SlotState>,
    /// Signaled (notify_all) exactly once, when the computer publishes.
    ready: Condvar,
}

enum SlotState {
    /// The computer is executing; `waiters` sessions are blocked on `ready`.
    Computing {
        /// How many sessions have attached to this computation so far.
        waiters: usize,
    },
    /// Published: `result` is what the computer produced, `waiters` how many
    /// sessions shared it (for `coalesced(n waiters)` reporting).
    Done {
        /// The computed answer (or the computer's typed error, fanned out so
        /// no waiter ever hangs on a failed computation).
        result: Result<QueryResult>,
        /// Waiter count at publish time.
        waiters: usize,
    },
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: Mutex::ranked(
                RANK_SERVE_SLOT,
                "serve_slot",
                SlotState::Computing { waiters: 0 },
            ),
            ready: Condvar::new(),
        }
    }

    /// Publishes the computation's outcome and wakes every waiter. Returns the
    /// number of waiters that were coalesced onto this computation.
    fn publish(&self, result: Result<QueryResult>) -> usize {
        let mut state = self.state.lock();
        let waiters = match *state {
            SlotState::Computing { waiters } => waiters,
            // Double publish cannot happen (one computer per slot); keep the
            // first result if it somehow does.
            SlotState::Done { waiters, .. } => waiters,
        };
        if matches!(*state, SlotState::Computing { .. }) {
            *state = SlotState::Done { result, waiters };
        }
        drop(state);
        self.ready.notify_all();
        waiters
    }

    /// Blocks until the computer publishes, then returns the shared result and
    /// the total waiter count.
    fn wait(&self) -> (Result<QueryResult>, usize) {
        let mut state = self.state.lock();
        loop {
            match &*state {
                SlotState::Done { result, waiters } => return (result.clone(), *waiters),
                SlotState::Computing { .. } => state = self.ready.wait(state),
            }
        }
    }
}

/// How the cache disposed of one lookup.
enum Role {
    /// A published entry matched: the answer is already here.
    Hit(Result<QueryResult>),
    /// An identical computation is in flight: wait for its publication.
    Wait(Arc<Slot>),
    /// This session owns the computation (and must publish to its slot).
    Compute(Arc<Slot>),
}

/// Key → slot map plus FIFO insertion order for eviction.
struct CacheMap {
    map: HashMap<CacheKey, Arc<Slot>>,
    order: VecDeque<CacheKey>,
}

/// The coalescing result cache. All map access goes through the ranked
/// `serve_cache` lock; slot state is inspected *under* the map lock only in
/// the legal `serve_cache → serve_slot` direction.
struct QueryCache {
    slots: Mutex<CacheMap>,
    max_entries: usize,
}

impl QueryCache {
    fn new(max_entries: usize) -> QueryCache {
        QueryCache {
            slots: Mutex::ranked(
                RANK_SERVE_CACHE,
                "serve_cache",
                CacheMap { map: HashMap::new(), order: VecDeque::new() },
            ),
            max_entries: max_entries.max(1),
        }
    }

    /// Joins the computation for `key`: hit a published entry, attach to an
    /// in-flight one, or claim computership by inserting a fresh slot.
    /// Computership is decided by map-entry vacancy under the map lock, so
    /// exactly one session computes each key at a time.
    /// Besides the role, returns how many completed entries the insertion
    /// evicted (0 for hits and waits), so the caller can count them.
    fn join_query(&self, key: &CacheKey) -> (Role, usize) {
        let mut slots = lock_ordered(RANK_SERVE_CACHE, "serve_cache", &self.slots);
        if let Some(slot) = slots.map.get(key) {
            let slot = Arc::clone(slot);
            // serve_cache (1) → serve_slot (2) is in documented order.
            let mut state = slot.state.lock();
            match &mut *state {
                SlotState::Done { result, .. } => return (Role::Hit(result.clone()), 0),
                SlotState::Computing { waiters } => {
                    *waiters += 1;
                    drop(state);
                    return (Role::Wait(slot), 0);
                }
            }
        }
        let slot = Arc::new(Slot::new());
        slots.map.insert(key.clone(), Arc::clone(&slot));
        slots.order.push_back(key.clone());
        let evicted = self.evict_excess(&mut slots);
        (Role::Compute(slot), evicted)
    }

    /// Evicts oldest *completed* entries past the configured cap. In-flight
    /// computations are skipped (re-queued), so coalescing never breaks.
    fn evict_excess(&self, slots: &mut CacheMap) -> usize {
        let mut evicted = 0;
        let mut requeue: Vec<CacheKey> = Vec::new();
        while slots.map.len() - requeue.len() > self.max_entries {
            let Some(key) = slots.order.pop_front() else { break };
            let done = match slots.map.get(&key) {
                Some(slot) => matches!(*slot.state.lock(), SlotState::Done { .. }),
                None => {
                    // Already removed (error / invalidation); drop the stale
                    // order entry and keep scanning.
                    continue;
                }
            };
            if done {
                slots.map.remove(&key);
                evicted += 1;
            } else {
                requeue.push(key);
            }
            if requeue.len() >= slots.order.len() + requeue.len() {
                break; // everything left is in flight
            }
        }
        for key in requeue {
            slots.order.push_back(key);
        }
        evicted
    }

    /// Removes `key` (a computation that errored, or whose data generation
    /// moved mid-execution) so future sessions recompute instead of hitting it.
    fn drop_entry(&self, key: &CacheKey) {
        let mut slots = lock_ordered(RANK_SERVE_CACHE, "serve_cache", &self.slots);
        slots.map.remove(key);
        slots.order.retain(|k| k != key);
    }

    /// The disposition a non-`EXPLAIN` run of this key would see *right now*
    /// (what `EXPLAIN` renders as its `cache:` line). Does not attach, insert,
    /// or evict.
    fn probe_status(&self, key: &CacheKey) -> CacheStatus {
        let slots = lock_ordered(RANK_SERVE_CACHE, "serve_cache", &self.slots);
        match slots.map.get(key) {
            None => CacheStatus::Miss,
            Some(slot) => match *slot.state.lock() {
                SlotState::Done { .. } => CacheStatus::Hit,
                SlotState::Computing { waiters } => CacheStatus::Coalesced(waiters + 1),
            },
        }
    }
}

/// FIFO plan-cost admission control over the shared execution resources
/// (worker pool, simulated GPU).
struct Admission {
    /// Ticket/budget state, paired with `turn`; ranked `admission` (rank 0 —
    /// acquired while holding nothing, before any engine work).
    state: Mutex<AdmissionState>,
    /// Signaled whenever the queue may advance (an admit or a release).
    turn: Condvar,
    capacity: f64,
}

struct AdmissionState {
    next_ticket: u64,
    serving: u64,
    in_flight_cost: f64,
}

impl Admission {
    fn new(capacity: f64) -> Admission {
        Admission {
            state: Mutex::ranked(
                RANK_ADMISSION,
                "admission",
                AdmissionState { next_ticket: 0, serving: 0, in_flight_cost: 0.0 },
            ),
            turn: Condvar::new(),
            capacity: if capacity.is_finite() && capacity > 0.0 { capacity } else { f64::INFINITY },
        }
    }

    /// Blocks until this caller's FIFO turn comes up *and* `cost` fits the
    /// remaining budget (a query bigger than the whole budget is admitted
    /// alone). Returns a permit that releases the budget on drop. The time
    /// spent waiting lands in the `blazeit_serving_admission_wait_seconds`
    /// histogram, and the queue depth gauge tracks every enqueue/admit.
    fn acquire(&self, cost: f64) -> AdmissionPermit<'_> {
        let cost = if cost.is_finite() && cost > 0.0 { cost } else { 1.0 };
        let waited = std::time::Instant::now();
        let mut state = self.state.lock();
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        obs::metrics()
            .serving_admission_queue_depth
            .set((state.next_ticket - state.serving) as f64);
        loop {
            let my_turn = state.serving == ticket;
            let fits = state.in_flight_cost == 0.0 || state.in_flight_cost + cost <= self.capacity;
            if my_turn && fits {
                state.serving += 1;
                state.in_flight_cost += cost;
                obs::metrics()
                    .serving_admission_queue_depth
                    .set((state.next_ticket - state.serving) as f64);
                drop(state);
                obs::metrics().serving_admission_wait.observe(waited.elapsed().as_secs_f64());
                // The next ticket may also fit: let it check.
                self.turn.notify_all();
                return AdmissionPermit { admission: self, cost };
            }
            state = self.turn.wait(state);
        }
    }

    /// Sessions currently queued: tickets issued but not yet admitted.
    fn queue_depth(&self) -> u64 {
        let state = self.state.lock();
        state.next_ticket - state.serving
    }

    fn release(&self, cost: f64) {
        let mut state = self.state.lock();
        state.in_flight_cost = (state.in_flight_cost - cost).max(0.0);
        drop(state);
        self.turn.notify_all();
    }
}

/// RAII admission grant: dropping it returns the plan-cost estimate to the
/// budget and wakes queued sessions (panic-safe — an unwinding computation
/// still releases its budget).
struct AdmissionPermit<'a> {
    admission: &'a Admission,
    cost: f64,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.admission.release(self.cost);
    }
}

/// A snapshot of the serving layer's counters (see [`Server::stats`]). Every
/// field is monotonic except `queued`, which is the instantaneous admission
/// queue depth at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Lookups answered from a published cache entry.
    pub hits: u64,
    /// Lookups that claimed computership (executed the engine).
    pub misses: u64,
    /// Sessions that attached to an identical in-flight computation.
    pub coalesced: u64,
    /// Completed entries evicted by the size cap.
    pub evicted: u64,
    /// Entries dropped because they errored or their data generation moved
    /// while they executed.
    pub invalidated: u64,
    /// Sessions waiting in the admission queue *right now* (instantaneous
    /// gauge, not a monotonic counter).
    pub queued: u64,
}

#[derive(Default)]
struct StatCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evicted: AtomicU64,
    invalidated: AtomicU64,
}

/// Plan-cost estimate for admission control, from information the planner
/// already computed for free: colder caches and heavier strategies cost more.
/// Unitless, comparable only against [`ServeConfig::admission_capacity`].
fn estimated_cost(plan: &QueryPlan) -> f64 {
    plan.subplans
        .iter()
        .map(|sub| {
            let warmth = |w: CacheWarmth, cold: f64, disk: f64| match w {
                CacheWarmth::Cold => cold,
                CacheWarmth::Disk => disk,
                CacheWarmth::Memory => 0.0,
            };
            let strategy = match sub.strategy {
                PlanStrategy::ExactScan | PlanStrategy::ExactDistinct => 16.0,
                PlanStrategy::ScrubScan => 12.0,
                PlanStrategy::Selection => 6.0,
                PlanStrategy::NaiveSampling => 4.0,
                PlanStrategy::ScrubRanked => 3.0,
                PlanStrategy::SpecializedAggregate { .. } => 2.0,
                PlanStrategy::ContinuousAggregate => 1.0,
            };
            1.0 + strategy
                + warmth(sub.specialized_cache, 8.0, 1.0)
                + warmth(sub.score_index_cache, 4.0, 0.5)
        })
        .sum()
}

/// The concurrent query server: N sessions over one shared catalog, with
/// result caching, query coalescing, and admission control between them and
/// the engine. See the [module docs](self) for the architecture.
pub struct Server {
    catalog: Arc<Catalog>,
    cache: QueryCache,
    admission: Admission,
    stats: StatCounters,
    next_session: AtomicU64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("videos", &self.catalog.video_names())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Server {
    /// A server over `catalog` with the default [`ServeConfig`].
    pub fn new(catalog: Arc<Catalog>) -> Server {
        Server::with_config(catalog, ServeConfig::default())
    }

    /// A server over `catalog` with explicit serving tunables.
    pub fn with_config(catalog: Arc<Catalog>, config: ServeConfig) -> Server {
        Server {
            catalog,
            cache: QueryCache::new(config.max_cached_results),
            admission: Admission::new(config.admission_capacity),
            stats: StatCounters::default(),
            next_session: AtomicU64::new(1),
        }
    }

    /// The shared catalog behind this server.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Opens a session: an independent query handle with its own simulated-
    /// cost ledger (charge tag). Sessions are cheap; open one per client.
    pub fn session(&self) -> ServerSession<'_> {
        ServerSession { server: self, tag: self.next_session.fetch_add(1, Ordering::SeqCst) }
    }

    /// Convenience: run one query on a throwaway session.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.session().query(sql)
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            hits: self.stats.hits.load(Ordering::SeqCst),
            misses: self.stats.misses.load(Ordering::SeqCst),
            coalesced: self.stats.coalesced.load(Ordering::SeqCst),
            evicted: self.stats.evicted.load(Ordering::SeqCst),
            invalidated: self.stats.invalidated.load(Ordering::SeqCst),
            queued: self.admission.queue_depth(),
        }
    }
}

/// One client's query handle over a [`Server`]. Obtained from
/// [`Server::session`]; holds the session's [`SimClock`] charge tag so every
/// simulated second this session's queries spend — including work fanned out
/// to the worker pool — lands in its own ledger.
#[derive(Debug, Clone, Copy)]
pub struct ServerSession<'a> {
    server: &'a Server,
    tag: u64,
}

impl ServerSession<'_> {
    /// This session's charge tag (ledger id on the shared [`SimClock`]).
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The simulated cost this session has been charged so far.
    pub fn cost(&self) -> blazeit_detect::clock::CostBreakdown {
        self.server.catalog.clock().breakdown_for(self.tag)
    }

    /// Parses, plans, and executes a FrameQL query through the serving layer:
    /// cache hit, coalesced wait, or admitted computation. `EXPLAIN` runs
    /// free and reports the cache disposition its query would see; `EXPLAIN
    /// ANALYZE` executes under a trace collector — admitted like a miss, but
    /// never cached, counted, or coalesced, so tracing a query cannot perturb
    /// the plain query's cache entry or the serving counters.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        obs::metrics().serving_queries.inc();
        let prepared = self.server.catalog.session().prepare(sql)?;
        let key = CacheKey::for_query(&prepared);

        if prepared.is_analyze() {
            let mut prepared = prepared;
            prepared.plan_mut().cache = Some(self.server.cache.probe_status(&key));
            let estimate = estimated_cost(prepared.plan());
            let waited = std::time::Instant::now();
            let _permit = self.server.admission.acquire(estimate);
            prepared.set_admission_wait(waited.elapsed().as_secs_f64());
            let tag = self.tag;
            return SimClock::with_charge_tag(tag, || prepared.run());
        }

        if prepared.is_explain() {
            let mut prepared = prepared;
            prepared.plan_mut().cache = Some(self.server.cache.probe_status(&key));
            return prepared.run();
        }

        let (role, evicted) = self.server.cache.join_query(&key);
        if evicted > 0 {
            self.server.stats.evicted.fetch_add(evicted as u64, Ordering::SeqCst);
            obs::metrics().serving_evicted.add(evicted as u64);
        }
        match role {
            Role::Hit(result) => {
                self.server.stats.hits.fetch_add(1, Ordering::SeqCst);
                obs::metrics().serving_hits.inc();
                result
            }
            Role::Wait(slot) => {
                self.server.stats.coalesced.fetch_add(1, Ordering::SeqCst);
                obs::metrics().serving_coalesced.inc();
                let (result, _waiters) = slot.wait();
                result
            }
            Role::Compute(slot) => {
                self.server.stats.misses.fetch_add(1, Ordering::SeqCst);
                obs::metrics().serving_misses.inc();
                self.compute(&prepared, &key, &slot)
            }
        }
    }

    /// The computer path: admit against the plan-cost budget, execute under
    /// this session's charge tag, publish to every coalesced waiter, and keep
    /// (or drop) the entry for future hits.
    fn compute(
        &self,
        prepared: &PreparedQuery,
        key: &CacheKey,
        slot: &Slot,
    ) -> Result<QueryResult> {
        let estimate = estimated_cost(prepared.plan());
        let result = {
            // Admission is held only across the execution — never while any
            // serving lock is held, and released (by drop) even on unwind.
            let _permit = self.server.admission.acquire(estimate);
            let tag = self.tag;
            catch_unwind(AssertUnwindSafe(|| SimClock::with_charge_tag(tag, || prepared.run())))
                .unwrap_or_else(|payload| {
                    let message = if let Some(m) = payload.downcast_ref::<&str>() {
                        (*m).to_string()
                    } else if let Some(m) = payload.downcast_ref::<String>() {
                        m.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    Err(BlazeItError::TaskPanicked {
                        task: format!("serving computation for {sql:?}", sql = prepared.query()),
                        message,
                    })
                })
        };
        // Publish before any map maintenance, so waiters are never delayed by
        // (or ordered after) cache bookkeeping.
        slot.publish(result.clone());
        // A failed computation must not be served as a hit; and if the data
        // generation moved while we executed, the entry answers for a key no
        // new session will compute — drop it so memory is not pinned.
        let generation_moved = prepared
            .contexts()
            .zip(&key.videos)
            .any(|(ctx, (_, generation, _))| ctx.data_generation() != *generation);
        if result.is_err() || generation_moved {
            self.server.stats.invalidated.fetch_add(1, Ordering::SeqCst);
            obs::metrics().serving_invalidated.inc();
            self.server.cache.drop_entry(key);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_videostore::DatasetPreset;

    fn server() -> Server {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 900).unwrap();
        Server::new(Arc::new(catalog))
    }

    const FCOUNT: &str =
        "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";

    #[test]
    fn identical_queries_hit_the_result_cache() {
        let server = server();
        let first = server.query(FCOUNT).unwrap();
        let second = server.query(FCOUNT).unwrap();
        assert_eq!(first.output, second.output);
        let stats = server.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn explain_reports_the_cache_disposition() {
        let server = server();
        let explain = |s: &Server| {
            let result = s.query(&format!("EXPLAIN {FCOUNT}")).unwrap();
            result.output.explain_plan().unwrap().to_string()
        };
        assert!(explain(&server).contains("cache:    miss"), "cold cache must explain as miss");
        server.query(FCOUNT).unwrap();
        assert!(explain(&server).contains("cache:    hit"), "published entry must explain as hit");
        // EXPLAIN itself stays free, uncached, and uncounted.
        let stats = server.stats();
        assert_eq!((stats.misses, stats.hits), (1, 0), "probes must not count: {stats:?}");
    }

    #[test]
    fn generation_bump_invalidates_precisely() {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 900).unwrap();
        catalog.register_preset(DatasetPreset::Rialto, 900).unwrap();
        let server = Server::new(Arc::new(catalog));
        let rialto =
            "SELECT FCOUNT(*) FROM rialto WHERE class = 'boat' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
        server.query(FCOUNT).unwrap();
        server.query(rialto).unwrap();
        assert_eq!(server.stats().misses, 2);
        // Bump taipei only (UDF registration bumps the data generation).
        server
            .catalog()
            .context("taipei")
            .unwrap()
            .register_udf("tick", false, |_, _| blazeit_frameql::Value::Number(1.0));
        server.query(FCOUNT).unwrap(); // new key → recompute
        server.query(rialto).unwrap(); // untouched video → still a hit
        let stats = server.stats();
        assert_eq!(stats.misses, 3, "bumped video must recompute");
        assert_eq!(stats.hits, 1, "untouched video must keep hitting");
    }

    #[test]
    fn concurrent_identical_queries_coalesce() {
        let server = server();
        let results: Vec<QueryResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let session = server.session();
                    scope.spawn(move || session.query(FCOUNT).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in results.windows(2) {
            assert_eq!(pair[0].output, pair[1].output, "all sessions must share one answer");
        }
        let stats = server.stats();
        assert_eq!(
            stats.misses + stats.hits + stats.coalesced,
            6,
            "every session is exactly one of computer/hit/waiter: {stats:?}"
        );
        assert!(stats.misses >= 1);
    }

    #[test]
    fn failed_queries_are_not_cached() {
        let server = server();
        let bad = "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 \
                   AT CONFIDENCE 95% LIMIT 0 GAP 1";
        // Whatever the error shape, two runs must both reach the engine.
        let first = server.query(bad);
        let second = server.query(bad);
        assert_eq!(first.is_err(), second.is_err());
        if first.is_err() {
            assert_eq!(server.stats().hits, 0, "errors must never be served as hits");
        }
    }

    #[test]
    fn sessions_charge_their_own_ledgers() {
        let server = server();
        let a = server.session();
        let b = server.session();
        assert_ne!(a.tag(), b.tag());
        a.query(FCOUNT).unwrap();
        b.query(FCOUNT).unwrap(); // hit: no cost charged to b
        let clock = server.catalog().clock();
        let total = clock.breakdown();
        assert!(a.cost().total() > 0.0, "the computing session pays");
        assert_eq!(b.cost().total(), 0.0, "a cache hit charges the hitting session nothing");
        let summed: f64 =
            clock.charged_tags().iter().map(|&t| clock.breakdown_for(t).total()).sum();
        assert_eq!(summed, total.total(), "per-tag ledgers must sum to the global clock");
    }

    #[test]
    fn admission_is_fifo_and_bounded() {
        let admission = Admission::new(10.0);
        let p1 = admission.acquire(6.0);
        // 6 + 6 > 10: the second acquire must wait until p1 releases.
        let waited = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _p2 = admission.acquire(6.0);
                true
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(p1);
            handle.join().unwrap()
        });
        assert!(waited);
        // A query bigger than the whole budget still runs (alone).
        let _huge = admission.acquire(1000.0);
    }
}
