//! # blazeit-core
//!
//! The BlazeIt query optimizer and execution engine (the paper's primary contribution).
//!
//! The public query surface is a [`Catalog`] of registered videos
//! (each a [`VideoContext`] with its own labeled set and
//! per-video caches). A [`Session`] routes FrameQL queries by their
//! `FROM` clause, classifies them with the rule-based optimizer, and plans them into
//! an inspectable [`QueryPlan`] —
//! [`Session::prepare`](session::Session::prepare) returns a
//! [`PreparedQuery`] whose plan can be overridden before
//! `.run()`, and `EXPLAIN <query>` renders the plan without charging the simulated
//! clock. Execution picks the cheapest strategy that meets the requested accuracy:
//!
//! * **Aggregation** ([`aggregate`]) — adaptive sampling with a CLT stopping rule
//!   (Section 6.1), query rewriting with specialized NNs when their held-out error is
//!   good enough (Section 6.2, Algorithm 1), and control variates otherwise
//!   (Section 6.3).
//! * **Scrubbing** ([`scrub`]) — importance ordering of frames by specialized-NN
//!   confidence for cardinality-limited (LIMIT/GAP) queries (Section 7).
//! * **Content-based selection** ([`select`]) — automatically inferred label / content
//!   / temporal / spatial filters applied before object detection (Section 8).
//! * **Baselines** ([`baselines`]) — the naive full-scan, the NoScope oracle, and naive
//!   AQP, against which every experiment in the paper compares.
//! * **Durable indexes** ([`store`]) — [`Catalog::with_index_store`](catalog::Catalog::with_index_store)
//!   persists trained specialized networks and score indexes on disk
//!   (read-through / write-behind under the per-video caches), so the
//!   "BlazeIt (indexed)" scenario survives across catalog instances with zero
//!   specialized-inference cost on warm loads.
//! * **Cross-video queries** — `FROM a, b, c` and `FROM *` fan a query out over
//!   many registered videos: per-video sub-queries run in parallel and results
//!   merge honestly (summed estimates with composed confidence intervals, one
//!   global scrubbing `LIMIT` with early cancellation, source-tagged selection
//!   rows); see [`plan::MergeSemantics`].
//! * **Streaming ingestion and continuous queries** ([`stream`]) —
//!   [`Catalog::register_stream`](catalog::Catalog::register_stream) turns a
//!   registration into a live feed: ingestion extends cached score indexes
//!   incrementally (bit-identical to a cold re-score, charging only the new
//!   frames), a drift monitor schedules background retrains that swap the
//!   specialized network atomically, and
//!   [`Session::subscribe`](session::Session::subscribe) yields per-tick
//!   aggregate updates with honest confidence intervals.
//!
//! * **Concurrent serving** ([`serve`]) — a [`Server`] shares one catalog across
//!   N concurrent sessions: identical queries coalesce onto one computation, a
//!   result cache keyed on the normalized query × per-video
//!   `(name, data generation, config fingerprint)` serves repeats instantly and
//!   invalidates precisely when data changes, and plan-cost FIFO admission
//!   control bounds concurrent load fairly. The `blazeit-server` binary exposes
//!   the layer over a line/JSON TCP protocol.
//!
//! * **Robustness** ([`fault`]) — deterministic fault injection (failpoints
//!   compiled in under the `fault-injection` feature, scheduled by a seeded
//!   RNG), retry with exponential backoff for transient store errors, and
//!   graceful degradation: persistent store failure flips a context to
//!   memory-only mode, failed drift retrains keep the current generation and
//!   re-arm with backoff, and a panicking parallel task becomes a typed
//!   [`BlazeItError::TaskPanicked`] instead of poisoning the pool. Every
//!   degradation is recorded in a per-context [`fault::HealthState`] rendered
//!   by EXPLAIN.
//!
//! All expensive work charges the shared [`SimClock`](blazeit_detect::SimClock), so
//! end-to-end runtimes are deterministic and comparable across plans.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod baselines;
pub mod catalog;
pub mod config;
pub mod context;
pub mod engine;
pub mod fault;
pub mod labeled;
pub mod lockorder;
pub mod metrics;
pub mod obs;
pub mod plan;
pub mod relation;
pub mod result;
pub mod scrub;
pub mod select;
pub mod serve;
pub mod session;
pub mod stats;
pub mod store;
pub mod stream;
pub mod sync;

pub use catalog::Catalog;
pub use config::BlazeItConfig;
pub use context::{CacheWarmth, VideoContext};
pub use engine::BlazeIt;
pub use fault::{HealthReport, HealthState, RetrainHealth, RetryPolicy};
pub use labeled::LabeledSet;
pub use metrics::RuntimeReport;
pub use obs::{QueryTrace, TraceSpan};
pub use plan::{CacheStatus, MergeSemantics, PlanStrategy, QueryPlan, RewriteDecision, VideoPlan};
pub use result::{
    AggregateMethod, QueryOutput, QueryResult, SourcedFrame, SourcedRow, VideoAggregate,
};
pub use serve::{ServeConfig, ServeStats, Server, ServerSession};
pub use session::{PreparedQuery, Session};
pub use store::{IndexStore, StoreError};
pub use stream::{
    DriftConfig, IngestReport, RefreshReport, RefreshState, StreamSource, StreamStatus,
    StreamUpdate, Subscription,
};

use blazeit_frameql::FrameQlError;
use blazeit_nn::NnError;
use blazeit_videostore::VideoError;

/// Errors produced by the BlazeIt engine.
#[derive(Debug, Clone, PartialEq)]
pub enum BlazeItError {
    /// Error from the FrameQL front-end.
    FrameQl(FrameQlError),
    /// Error from the video substrate.
    Video(VideoError),
    /// Error from the NN substrate.
    Nn(NnError),
    /// The query references a video that is not registered in the catalog.
    UnknownVideo {
        /// The video named in the query.
        requested: String,
        /// The videos the catalog has registered, in registration order.
        available: Vec<String>,
        /// The registered name closest to the request (by edit distance over
        /// normalized names), when one is plausibly a typo.
        hint: Option<String>,
    },
    /// The durable index store failed (I/O, or an invalid artifact file).
    Store(store::StoreError),
    /// Live stream ingestion failed before any state changed; the stream is
    /// unchanged and `advance` can simply be retried.
    Ingest {
        /// The stream's registered video name.
        video: String,
        /// What went wrong, rendered.
        message: String,
    },
    /// A fanned-out parallel task panicked; the panic was caught at the task
    /// boundary (the worker pool and sibling tasks are unaffected) and
    /// converted to this typed error.
    TaskPanicked {
        /// Which task panicked (e.g. the sub-query's video).
        task: String,
        /// The panic message.
        message: String,
    },
    /// The query is valid FrameQL but not executable by this engine.
    Unsupported(String),
    /// An invariant was violated during planning or execution.
    Internal(String),
}

impl std::fmt::Display for BlazeItError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlazeItError::FrameQl(e) => write!(f, "FrameQL error: {e}"),
            BlazeItError::Video(e) => write!(f, "video error: {e}"),
            BlazeItError::Nn(e) => write!(f, "model error: {e}"),
            BlazeItError::UnknownVideo { requested, available, hint } => {
                if available.is_empty() {
                    write!(f, "query references video '{requested}' but the catalog is empty")
                } else {
                    write!(
                        f,
                        "query references unknown video '{requested}' (registered: {})",
                        available.join(", ")
                    )?;
                    if let Some(hint) = hint {
                        write!(f, "; did you mean '{hint}'?")?;
                    }
                    write!(f, " — FROM * queries every registered video")
                }
            }
            BlazeItError::Store(e) => write!(f, "index store error: {e}"),
            BlazeItError::Ingest { video, message } => {
                write!(f, "stream ingest error on '{video}': {message} (stream unchanged)")
            }
            BlazeItError::TaskPanicked { task, message } => {
                write!(f, "parallel task panicked ({task}): {message}")
            }
            BlazeItError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            BlazeItError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for BlazeItError {}

impl From<FrameQlError> for BlazeItError {
    fn from(e: FrameQlError) -> Self {
        BlazeItError::FrameQl(e)
    }
}

impl From<VideoError> for BlazeItError {
    fn from(e: VideoError) -> Self {
        BlazeItError::Video(e)
    }
}

impl From<NnError> for BlazeItError {
    fn from(e: NnError) -> Self {
        BlazeItError::Nn(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, BlazeItError>;
