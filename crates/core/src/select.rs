//! Content-based selection queries (Section 8 of the paper).
//!
//! Selection queries need the actual masks / content of every matching object, so the
//! detector must run on every *relevant* frame — the optimization is to discard
//! irrelevant frames (or shrink them) before detection. BlazeIt infers four classes of
//! filters from the query and the labeled set:
//!
//! * **Temporal filter** — `GROUP BY trackid HAVING COUNT(*) > K` means objects must be
//!   visible for more than `K` frames, so sampling every `(K-1)/2` frames cannot miss
//!   them.
//! * **Spatial filter** — explicit mask constraints (`xmax(mask) < 720`) or, absent
//!   those, the region the target class actually occupies in the labeled data; the
//!   detector then runs on a smaller, squarer crop, which is cheaper.
//! * **Content filter** — frame-liftable UDF predicates (`redness(content) >= 17.5`)
//!   are turned into frame-level thresholds calibrated on the held-out day with no
//!   false negatives.
//! * **Label filter** — a specialized binary-presence NN for the target class,
//!   thresholded on the held-out day with no false negatives (NoScope-style).
//!
//! Filters are applied cheapest-first; only frames surviving every filter reach the
//! object detector. Because every returned row is detector-verified, the plan can only
//! introduce false negatives, whose rate the experiments measure against the naive scan.

use crate::context::VideoContext;
use crate::obs;
use crate::plan::VideoPlan;
use crate::relation::RelationBuilder;
use crate::result::QueryOutput;
use crate::{BlazeItError, Result};
use blazeit_detect::clock::CostCategory;
use blazeit_frameql::ast::BinaryOp;
use blazeit_frameql::expr::evaluate_row;
use blazeit_frameql::query::{ContentPredicate, MaskAccessor, QueryPlanInfo};
use blazeit_frameql::{FrameQlRow, Query};
use blazeit_nn::ScoreMatrix;
use blazeit_videostore::{BoundingBox, Frame, FrameIndex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Minimum number of positive labeled frames required before the label-based filter
/// is calibrated for a selection query (shared with the planner so `EXPLAIN` reports
/// exactly the filters execution will use).
pub const MIN_LABEL_FILTER_EXAMPLES: usize = 20;

/// Which filter classes the plan is allowed to use (all enabled by default; the factor
/// analysis / lesion study of Figure 11 toggles them individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionOptions {
    /// Enable the label-based (specialized NN) filter.
    pub use_label_filter: bool,
    /// Enable frame-level content filters lifted from UDF predicates.
    pub use_content_filter: bool,
    /// Enable temporal subsampling derived from track-duration constraints.
    pub use_temporal_filter: bool,
    /// Enable spatial cropping.
    pub use_spatial_filter: bool,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions::all()
    }
}

impl SelectionOptions {
    /// Every inferred filter enabled: the full BlazeIt selection plan (what the
    /// planner puts in a fresh [`VideoPlan`]).
    pub fn all() -> SelectionOptions {
        SelectionOptions {
            use_label_filter: true,
            use_content_filter: true,
            use_temporal_filter: true,
            use_spatial_filter: true,
        }
    }

    /// No filters at all: the naive plan expressed through the same executor.
    pub fn none() -> SelectionOptions {
        SelectionOptions {
            use_label_filter: false,
            use_content_filter: false,
            use_temporal_filter: false,
            use_spatial_filter: false,
        }
    }
}

/// A calibrated frame-level content filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentFilter {
    /// UDF name.
    pub udf: String,
    /// The original object-level operator (only `>` / `>=` predicates are lifted).
    pub op: BinaryOp,
    /// The frame-level threshold below which frames are discarded.
    pub frame_threshold: f64,
}

/// The resolved filter plan for one selection query.
pub struct FilterPlan {
    /// Frame-scan stride (1 = every frame).
    pub stride: u64,
    /// Detection region of interest, if any.
    pub region: Option<BoundingBox>,
    /// Calibrated frame-level content filters.
    pub content_filters: Vec<ContentFilter>,
    /// Label filter: the unseen video's batched score index, the head to read,
    /// and the no-false-negative presence threshold. Scoring happened when the
    /// index was built (cached on the context), so applying the filter during the
    /// scan is a lookup, not an inference.
    pub label_filter: Option<(Arc<ScoreMatrix>, usize, f64)>,
    /// Minimum number of *scanned* frames a track must appear in (derived from the
    /// track-duration constraint and the stride).
    pub min_track_appearances: u64,
}

impl std::fmt::Debug for FilterPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterPlan")
            .field("stride", &self.stride)
            .field("region", &self.region)
            .field("content_filters", &self.content_filters)
            .field("has_label_filter", &self.label_filter.is_some())
            .field("min_track_appearances", &self.min_track_appearances)
            .finish()
    }
}

/// The outcome of a selection run, with per-stage frame counts for the factor analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// Rows satisfying the query.
    pub rows: Vec<FrameQlRow>,
    /// Number of detector invocations.
    pub detection_calls: u64,
    /// Frames considered after temporal subsampling.
    pub frames_considered: u64,
    /// Frames surviving the content filter.
    pub frames_after_content: u64,
    /// Frames surviving the label filter (and therefore sent to detection).
    pub frames_after_label: u64,
}

impl SelectionOutcome {
    /// The distinct track ids among the returned rows (used to measure false negatives
    /// against the naive plan at the object level).
    pub fn track_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.rows.iter().map(|r| r.trackid).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Maps returned rows to *ground-truth* track ids by matching each row's mask against
/// the scene's objects in that frame (highest IoU wins, minimum 0.3).
///
/// Tracker-assigned `trackid`s are only unique within one scan, so comparing result
/// sets across plans (e.g. measuring BlazeIt's false-negative rate against the naive
/// plan, Figure 10) must go through the ground truth instead.
pub fn ground_truth_tracks(ctx: &VideoContext, rows: &[FrameQlRow]) -> Vec<u64> {
    let mut ids: Vec<u64> = rows
        .iter()
        .filter_map(|row| {
            ctx.video()
                .scene()
                .visible_at(row.frame)
                .iter()
                .map(|gt| (gt.track_id, gt.bbox.iou(&row.mask)))
                .filter(|&(_, iou)| iou >= 0.3)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(id, _)| id)
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Executes a selection (or exhaustive) query against one video, with the filter
/// options resolved into (or overridden on) its sub-plan.
pub fn execute(
    ctx: &VideoContext,
    query: &Query,
    info: &QueryPlanInfo,
    plan: &VideoPlan,
) -> Result<QueryOutput> {
    let outcome = execute_with_options(ctx, query, info, &plan.selection)?;
    Ok(QueryOutput::Rows { rows: outcome.rows, detection_calls: outcome.detection_calls })
}

/// Executes a selection query and returns the full outcome (used by the Figure 10/11
/// harnesses, which need per-stage statistics).
pub fn execute_with_options(
    ctx: &VideoContext,
    query: &Query,
    info: &QueryPlanInfo,
    options: &SelectionOptions,
) -> Result<SelectionOutcome> {
    let plan = {
        let _calibrate = obs::span("calibrate filters");
        plan_filters(ctx, info, options)?
    };
    run_selection(ctx, query, info, &plan)
}

/// Infers the filter plan from the query structure, the labeled set, and the options.
pub fn plan_filters(
    ctx: &VideoContext,
    info: &QueryPlanInfo,
    options: &SelectionOptions,
) -> Result<FilterPlan> {
    // --- Temporal filter ------------------------------------------------------------
    let stride = if options.use_temporal_filter {
        match info.min_track_frames {
            Some(k) if k >= 3 => ((k - 1) / 2).max(1),
            _ => 1,
        }
    } else {
        1
    };
    let min_track_appearances = match info.min_track_frames {
        Some(k) if k > 0 => (k / stride).max(1),
        _ => 1,
    };

    // --- Spatial filter ---------------------------------------------------------------
    let region = if options.use_spatial_filter { spatial_region(ctx, info) } else { None };

    // --- Content filters ---------------------------------------------------------------
    let content_filters =
        if options.use_content_filter { calibrate_content_filters(ctx, info)? } else { Vec::new() };

    // --- Label filter ------------------------------------------------------------------
    let label_filter =
        if options.use_label_filter { calibrate_label_filter(ctx, info)? } else { None };

    Ok(FilterPlan { stride, region, content_filters, label_filter, min_track_appearances })
}

/// Derives the detection region of interest.
///
/// Explicit mask constraints in the query win; otherwise the region is inferred from
/// where the target class appears in the labeled training data (with 5% padding). The
/// region is only used when it is meaningfully smaller than the full frame.
fn spatial_region(ctx: &VideoContext, info: &QueryPlanInfo) -> Option<BoundingBox> {
    let (width, height) = ctx.video().resolution();
    if !info.spatial_constraints.is_empty() {
        let mut xmin = 0.0f32;
        let mut ymin = 0.0f32;
        let mut xmax = width;
        let mut ymax = height;
        for c in &info.spatial_constraints {
            let v = c.value as f32;
            match (c.accessor, c.op) {
                (MaskAccessor::Xmax, BinaryOp::Lt | BinaryOp::LtEq) => xmax = xmax.min(v),
                (MaskAccessor::Xmin, BinaryOp::Gt | BinaryOp::GtEq) => xmin = xmin.max(v),
                (MaskAccessor::Ymax, BinaryOp::Lt | BinaryOp::LtEq) => ymax = ymax.min(v),
                (MaskAccessor::Ymin, BinaryOp::Gt | BinaryOp::GtEq) => ymin = ymin.max(v),
                _ => {}
            }
        }
        let region = BoundingBox::new(xmin, ymin, xmax, ymax);
        if !region.is_empty() {
            return Some(region);
        }
        return None;
    }

    // Infer from the labeled data: the union of the target class's boxes, padded.
    let class = info.single_class()?;
    let train = ctx.labeled().train();
    let mut xmin = f32::INFINITY;
    let mut ymin = f32::INFINITY;
    let mut xmax = f32::NEG_INFINITY;
    let mut ymax = f32::NEG_INFINITY;
    let mut seen = false;
    for detections in &train.detections {
        for d in detections {
            if d.class != class {
                continue;
            }
            seen = true;
            xmin = xmin.min(d.bbox.xmin);
            ymin = ymin.min(d.bbox.ymin);
            xmax = xmax.max(d.bbox.xmax);
            ymax = ymax.max(d.bbox.ymax);
        }
    }
    if !seen {
        return None;
    }
    let pad_x = 0.05 * width;
    let pad_y = 0.05 * height;
    let region = BoundingBox::new(xmin - pad_x, ymin - pad_y, xmax + pad_x, ymax + pad_y)
        .clamp_to(width, height);
    if region.area() < 0.85 * width * height {
        Some(region)
    } else {
        None
    }
}

/// Calibrates frame-level thresholds for liftable content predicates on the held-out
/// day, with no false negatives on that day (Section 8.1).
fn calibrate_content_filters(
    ctx: &VideoContext,
    info: &QueryPlanInfo,
) -> Result<Vec<ContentFilter>> {
    let liftable: Vec<&ContentPredicate> = info
        .content_predicates
        .iter()
        .filter(|p| p.frame_liftable && matches!(p.op, BinaryOp::Gt | BinaryOp::GtEq))
        .collect();
    if liftable.is_empty() {
        return Ok(Vec::new());
    }

    let heldout = ctx.labeled().heldout();
    let heldout_video = ctx.labeled().heldout_video();
    let (width, height) = heldout_video.resolution();
    let full = BoundingBox::new(0.0, 0.0, width, height);
    let target_class = info.single_class();
    let mut filters = Vec::new();

    for predicate in liftable {
        let mut qualifying_frame_values: Vec<f64> = Vec::new();
        let mut all_values: Vec<f64> = Vec::new();
        for (idx, &frame) in heldout.frames.iter().enumerate() {
            let pixels = heldout_video.frame(frame)?;
            ctx.clock().charge(CostCategory::Decode, ctx.config().cost.decode_cost());
            ctx.clock().charge(CostCategory::Filter, ctx.config().cost.filter_cost());
            let frame_value =
                ctx.udfs().call(&predicate.udf, &pixels, &full)?.as_number().ok_or_else(|| {
                    BlazeItError::Unsupported(format!(
                        "UDF '{}' does not return a continuous value",
                        predicate.udf
                    ))
                })?;
            all_values.push(frame_value);

            // Does this held-out frame contain a qualifying object (right class, and
            // the object-level predicate holds on its mask)?
            // blazeit-lint: allow(panic-site::index) -- idx enumerates heldout.detections, so it is
            // in range for that same vec
            let qualifies = heldout.detections[idx].iter().any(|d| {
                if let Some(class) = target_class {
                    if d.class != class {
                        return false;
                    }
                }
                let object_value = ctx
                    .udfs()
                    .call(&predicate.udf, &pixels, &d.bbox)
                    .ok()
                    .and_then(|v| v.as_number())
                    .unwrap_or(f64::NEG_INFINITY);
                match predicate.op {
                    BinaryOp::Gt => object_value > predicate.threshold,
                    _ => object_value >= predicate.threshold,
                }
            });
            if qualifies {
                qualifying_frame_values.push(frame_value);
            }
        }

        if qualifying_frame_values.is_empty() {
            // Nothing qualifies on the held-out day: a frame-level filter cannot be
            // calibrated safely, so skip it (the paper's "learn which filters can be
            // used effectively").
            continue;
        }
        let min_positive = qualifying_frame_values.iter().cloned().fold(f64::INFINITY, f64::min);
        let spread = {
            let max_all = all_values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min_all = all_values.iter().cloned().fold(f64::INFINITY, f64::min);
            (max_all - min_all).max(1e-9)
        };
        filters.push(ContentFilter {
            udf: predicate.udf.clone(),
            op: predicate.op,
            frame_threshold: min_positive - 0.05 * spread,
        });
    }
    Ok(filters)
}

/// Trains and calibrates the label-based (binary presence) filter for the target
/// class, returning the unseen video's score index plus the calibrated threshold.
///
/// Both score matrices involved (held-out day for calibration, test day for the
/// filter itself) come from the context's batched score-index cache, so repeated
/// selection queries over the same class neither retrain nor rescore anything.
fn calibrate_label_filter(
    ctx: &VideoContext,
    info: &QueryPlanInfo,
) -> Result<Option<(Arc<ScoreMatrix>, usize, f64)>> {
    let Some(class) = info.single_class() else { return Ok(None) };
    if !ctx.labeled().has_training_examples(&[(class, 1)], MIN_LABEL_FILTER_EXAMPLES) {
        return Ok(None);
    }
    let nn = ctx.specialized_for(&[(class, ctx.default_max_count(class, 1))])?;
    let heldout_scores = ctx.heldout_score_index(&nn)?;
    let threshold = nn.presence_threshold_from_scores(
        &heldout_scores,
        &ctx.labeled().heldout().class_counts(class),
        class,
    )?;
    let head = nn
        .head_index(class)
        .ok_or_else(|| BlazeItError::Internal(format!("no head for class {class}")))?;
    let scores = ctx.score_index(&nn)?;
    Ok(Some((scores, head, threshold)))
}

/// How many filter-surviving frames the selection scan hands to
/// [`SimulatedDetector::detect_batch_in_region`](blazeit_detect::SimulatedDetector::detect_batch_in_region)
/// at a time (the same pipelined prefetch idea as the scrub verification loop).
const DETECT_PREFETCH: usize = 16;

/// Runs the selection scan with a resolved filter plan.
///
/// Detection runs through a pipelined prefetch window: the cheap filters
/// (content, label) are evaluated frame by frame exactly as before — they decide
/// for free which frames reach the detector and can short-circuit per frame —
/// and the surviving frames are detected in batches of `DETECT_PREFETCH`
/// through one region-aware `detect_batch` call each. Filter outcomes never
/// depend on detection outcomes, so the returned rows, every per-stage count,
/// and every charged cost total are identical to the frame-by-frame loop; only
/// the per-call bookkeeping is amortized. Entity resolution (the tracker) still
/// sees frames strictly in scan order.
pub fn run_selection(
    ctx: &VideoContext,
    query: &Query,
    info: &QueryPlanInfo,
    plan: &FilterPlan,
) -> Result<SelectionOutcome> {
    let _select = obs::span("filter-detect");
    let video = ctx.video();
    let video = &*video;
    let (width, height) = video.resolution();
    let full = BoundingBox::new(0.0, 0.0, width, height);
    let mut builder = RelationBuilder::new(ctx.detector(), ctx.config().tracker_iou, plan.stride);

    let mut rows: Vec<FrameQlRow> = Vec::new();
    let mut track_appearances: HashMap<u64, u64> = HashMap::new();
    let mut detection_calls = 0u64;
    let mut frames_considered = 0u64;
    let mut frames_after_content = 0u64;
    let mut frames_after_label = 0u64;

    // Frames that passed every filter and await batched detection, carrying
    // the content filter's decoded buffer (already charged) when there is one,
    // so row evaluation reuses it exactly as the serial loop did.
    let mut window: Vec<(FrameIndex, Option<Frame>)> = Vec::with_capacity(DETECT_PREFETCH);

    let flush = |window: &mut Vec<(FrameIndex, Option<Frame>)>,
                 builder: &mut RelationBuilder<'_>,
                 rows: &mut Vec<FrameQlRow>,
                 track_appearances: &mut HashMap<u64, u64>,
                 detection_calls: &mut u64|
     -> Result<()> {
        if window.is_empty() {
            return Ok(());
        }
        let frames: Vec<FrameIndex> = window.iter().map(|&(f, _)| f).collect();
        let batch = ctx.detector().detect_batch_in_region(video, &frames, plan.region.as_ref());
        *detection_calls += frames.len() as u64;
        for ((frame, decoded), detections) in window.drain(..).zip(&batch) {
            let frame_rows = builder.rows_for_detections(video, frame, detections);

            // Row-level predicate evaluation, including content UDFs over the
            // actual masks; reuse the content filter's decode when it happened.
            let pixels = match decoded {
                Some(p) => p,
                None => {
                    let p = video.frame(frame)?;
                    ctx.clock().charge(CostCategory::Decode, ctx.config().cost.decode_cost());
                    p
                }
            };
            for row in frame_rows {
                let keep = match &query.where_clause {
                    Some(predicate) => {
                        ctx.clock().charge(CostCategory::Filter, ctx.config().cost.filter_cost());
                        evaluate_row(predicate, &row, Some(&pixels), &ctx.udfs())?.truthy()
                    }
                    None => true,
                };
                if !keep {
                    continue;
                }
                // Respect class requirements even when they came from HAVING clauses.
                if !info.requirements.is_empty()
                    && !info.requirements.iter().any(|r| r.class == row.class)
                {
                    continue;
                }
                *track_appearances.entry(row.trackid).or_insert(0) += 1;
                rows.push(row);
            }
        }
        Ok(())
    };

    let mut frame: FrameIndex = 0;
    while frame < video.len() {
        frames_considered += 1;

        // Content filter (cheapest learned filter, ~100,000 fps).
        let mut decoded = None;
        if !plan.content_filters.is_empty() {
            let pixels = video.frame(frame)?;
            ctx.clock().charge(CostCategory::Decode, ctx.config().cost.decode_cost());
            let mut passes = true;
            for filter in &plan.content_filters {
                ctx.clock().charge(CostCategory::Filter, ctx.config().cost.filter_cost());
                let value = ctx
                    .udfs()
                    .call(&filter.udf, &pixels, &full)?
                    .as_number()
                    .unwrap_or(f64::NEG_INFINITY);
                if value < filter.frame_threshold {
                    passes = false;
                    break;
                }
            }
            if !passes {
                frame += plan.stride;
                continue;
            }
            decoded = Some(pixels);
        }
        frames_after_content += 1;

        // Label filter: a lookup into the batched score index (the inference ran
        // when the index was built).
        if let Some((scores, head, threshold)) = &plan.label_filter {
            let p = scores.tail_probability(frame as usize, *head, 1);
            if p < *threshold {
                frame += plan.stride;
                continue;
            }
        }
        frames_after_label += 1;

        window.push((frame, decoded));
        if window.len() >= DETECT_PREFETCH {
            flush(
                &mut window,
                &mut builder,
                &mut rows,
                &mut track_appearances,
                &mut detection_calls,
            )?;
        }

        frame += plan.stride;
    }
    flush(&mut window, &mut builder, &mut rows, &mut track_appearances, &mut detection_calls)?;

    // Track-duration (noise-reduction) constraint: keep only tracks seen often enough.
    if plan.min_track_appearances > 1 {
        let qualifying: std::collections::HashSet<u64> = track_appearances
            .iter()
            .filter(|(_, &count)| count >= plan.min_track_appearances)
            .map(|(&id, _)| id)
            .collect();
        rows.retain(|r| qualifying.contains(&r.trackid));
    }

    Ok(SelectionOutcome {
        rows,
        detection_calls,
        frames_considered,
        frames_after_content,
        frames_after_label,
    })
}

/// The paper's Figure 3c query, parameterized by video name and redness/area/duration
/// thresholds — used by examples, tests and the Figure 10/11 harnesses.
pub fn red_bus_query(video: &str, redness: f64, min_area: f64, min_frames: u64) -> String {
    format!(
        "SELECT * FROM {video} WHERE class = 'bus' AND redness(content) >= {redness} \
         AND area(mask) > {min_area} GROUP BY trackid HAVING COUNT(*) > {min_frames}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BlazeIt;
    use blazeit_frameql::parse_query;
    use blazeit_frameql::query::analyze;
    use blazeit_videostore::{DatasetPreset, ObjectClass};

    fn engine() -> BlazeIt {
        BlazeIt::for_preset(DatasetPreset::Taipei, 2_000).unwrap()
    }

    fn red_bus_info(engine: &BlazeIt) -> (Query, QueryPlanInfo) {
        // Lower thresholds than the paper's 17.5/100k since the synthetic streams are
        // smaller; the structure of the query is identical to Figure 3c.
        let sql = red_bus_query("taipei", 10.0, 20_000.0, 15);
        let q = parse_query(&sql).unwrap();
        let info = analyze(&q, &engine.udfs()).unwrap();
        (q, info)
    }

    #[test]
    fn plan_includes_all_filter_classes_for_red_bus_query() {
        let e = engine();
        let (_q, info) = red_bus_info(&e);
        let plan = plan_filters(&e, &info, &SelectionOptions::all()).unwrap();
        // Temporal: HAVING COUNT(*) > 15 → stride (16-1)/2 = 7.
        assert_eq!(plan.stride, 7);
        assert!(plan.min_track_appearances >= 2);
        // Content: redness is liftable, and red buses exist in the labeled days.
        assert_eq!(plan.content_filters.len(), 1);
        assert_eq!(plan.content_filters[0].udf, "redness");
        // Label filter for buses.
        assert!(plan.label_filter.is_some());
        // Spatial region inferred from where buses appear (lane band), smaller than frame.
        if let Some(region) = plan.region {
            let (w, h) = e.video().resolution();
            assert!(region.area() < w * h);
        }
    }

    #[test]
    fn disabled_options_remove_filters() {
        let e = engine();
        let (_q, info) = red_bus_info(&e);
        let plan = plan_filters(&e, &info, &SelectionOptions::none()).unwrap();
        assert_eq!(plan.stride, 1);
        assert!(plan.content_filters.is_empty());
        assert!(plan.label_filter.is_none());
        assert!(plan.region.is_none());
    }

    #[test]
    fn filtered_plan_uses_fewer_detector_calls_than_unfiltered() {
        let e = engine();
        let (q, info) = red_bus_info(&e);
        let filtered = execute_with_options(&e, &q, &info, &SelectionOptions::all()).unwrap();
        let unfiltered = execute_with_options(&e, &q, &info, &SelectionOptions::none()).unwrap();
        assert!(
            filtered.detection_calls < unfiltered.detection_calls,
            "filtered {} vs unfiltered {}",
            filtered.detection_calls,
            unfiltered.detection_calls
        );
        assert!(filtered.frames_after_label <= filtered.frames_after_content);
        assert!(filtered.frames_after_content <= filtered.frames_considered);
    }

    #[test]
    fn returned_rows_satisfy_the_predicate() {
        let e = engine();
        let (q, info) = red_bus_info(&e);
        let outcome = execute_with_options(&e, &q, &info, &SelectionOptions::all()).unwrap();
        for row in &outcome.rows {
            assert_eq!(row.class, ObjectClass::Bus);
            assert!(row.mask.area() > 20_000.0);
        }
    }

    #[test]
    fn false_negative_rate_against_naive_is_bounded() {
        let e = engine();
        let (q, info) = red_bus_info(&e);
        let blazeit = execute_with_options(&e, &q, &info, &SelectionOptions::all()).unwrap();
        // Naive plan (stride 1, no learned filters) acts as the reference result set.
        // Result sets are compared through ground-truth track identity, because the
        // tracker assigns fresh ids on every scan.
        let naive = execute_with_options(&e, &q, &info, &SelectionOptions::none()).unwrap();
        let naive_tracks = ground_truth_tracks(&e, &naive.rows);
        if naive_tracks.is_empty() {
            return; // No red buses in this sample — nothing to compare.
        }
        let blazeit_tracks = ground_truth_tracks(&e, &blazeit.rows);
        let found = naive_tracks.iter().filter(|t| blazeit_tracks.contains(t)).count();
        let recall = found as f64 / naive_tracks.len() as f64;
        assert!(
            recall >= 0.5,
            "BlazeIt found only {found}/{} of the naive plan's tracks",
            naive_tracks.len()
        );
    }

    #[test]
    fn select_query_end_to_end_through_engine() {
        let e = engine();
        let sql = red_bus_query("taipei", 10.0, 20_000.0, 15);
        let result = e.query(&sql).unwrap();
        match result.output {
            QueryOutput::Rows { detection_calls, .. } => {
                assert!(detection_calls < e.video().len());
            }
            other => panic!("unexpected output {other:?}"),
        }
        assert!(result.runtime_secs() > 0.0);
    }

    /// The frame-by-frame scan the prefetch window must be indistinguishable from
    /// (the pre-batching implementation, kept verbatim as the reference).
    fn run_selection_serial_reference(
        ctx: &VideoContext,
        query: &Query,
        info: &QueryPlanInfo,
        plan: &FilterPlan,
    ) -> Result<SelectionOutcome> {
        let video = ctx.video();
        let video = &*video;
        let (width, height) = video.resolution();
        let full = BoundingBox::new(0.0, 0.0, width, height);
        let mut builder =
            RelationBuilder::new(ctx.detector(), ctx.config().tracker_iou, plan.stride);

        let mut rows: Vec<FrameQlRow> = Vec::new();
        let mut track_appearances: HashMap<u64, u64> = HashMap::new();
        let mut detection_calls = 0u64;
        let mut frames_considered = 0u64;
        let mut frames_after_content = 0u64;
        let mut frames_after_label = 0u64;

        let mut frame: FrameIndex = 0;
        while frame < video.len() {
            frames_considered += 1;
            let mut decoded = None;
            if !plan.content_filters.is_empty() {
                let pixels = video.frame(frame)?;
                ctx.clock().charge(CostCategory::Decode, ctx.config().cost.decode_cost());
                let mut passes = true;
                for filter in &plan.content_filters {
                    ctx.clock().charge(CostCategory::Filter, ctx.config().cost.filter_cost());
                    let value = ctx
                        .udfs()
                        .call(&filter.udf, &pixels, &full)?
                        .as_number()
                        .unwrap_or(f64::NEG_INFINITY);
                    if value < filter.frame_threshold {
                        passes = false;
                        break;
                    }
                }
                decoded = Some(pixels);
                if !passes {
                    frame += plan.stride;
                    continue;
                }
            }
            frames_after_content += 1;

            if let Some((scores, head, threshold)) = &plan.label_filter {
                let p = scores.tail_probability(frame as usize, *head, 1);
                if p < *threshold {
                    frame += plan.stride;
                    continue;
                }
            }
            frames_after_label += 1;

            let frame_rows = builder.rows_for_frame(video, frame, plan.region.as_ref());
            detection_calls += 1;

            let pixels = match decoded {
                Some(p) => p,
                None => {
                    let p = video.frame(frame)?;
                    ctx.clock().charge(CostCategory::Decode, ctx.config().cost.decode_cost());
                    p
                }
            };
            for row in frame_rows {
                let keep = match &query.where_clause {
                    Some(predicate) => {
                        ctx.clock().charge(CostCategory::Filter, ctx.config().cost.filter_cost());
                        evaluate_row(predicate, &row, Some(&pixels), &ctx.udfs())?.truthy()
                    }
                    None => true,
                };
                if !keep {
                    continue;
                }
                if !info.requirements.is_empty()
                    && !info.requirements.iter().any(|r| r.class == row.class)
                {
                    continue;
                }
                *track_appearances.entry(row.trackid).or_insert(0) += 1;
                rows.push(row);
            }
            frame += plan.stride;
        }

        if plan.min_track_appearances > 1 {
            let qualifying: std::collections::HashSet<u64> = track_appearances
                .iter()
                .filter(|(_, &count)| count >= plan.min_track_appearances)
                .map(|(&id, _)| id)
                .collect();
            rows.retain(|r| qualifying.contains(&r.trackid));
        }

        Ok(SelectionOutcome {
            rows,
            detection_calls,
            frames_considered,
            frames_after_content,
            frames_after_label,
        })
    }

    #[test]
    fn batched_selection_scan_matches_serial_loop_exactly() {
        // Two identical engines (deterministic substrate): one scans through the
        // pipelined detect_batch prefetch window, the other through the
        // frame-by-frame reference. Returned rows, per-stage counts, and every
        // charged cost category must agree — with all filters on (sparse,
        // ragged windows) and all filters off (every window full).
        let batched_engine = engine();
        let serial_engine = engine();
        for options in [SelectionOptions::all(), SelectionOptions::none()] {
            let (q_b, info_b) = red_bus_info(&batched_engine);
            let plan_b = plan_filters(&batched_engine, &info_b, &options).unwrap();
            let (q_s, info_s) = red_bus_info(&serial_engine);
            let plan_s = plan_filters(&serial_engine, &info_s, &options).unwrap();

            let before_b = batched_engine.clock().breakdown();
            let batched = run_selection(&batched_engine, &q_b, &info_b, &plan_b).unwrap();
            let charged_b = batched_engine.clock().breakdown().since(&before_b);

            let before_s = serial_engine.clock().breakdown();
            let serial =
                run_selection_serial_reference(&serial_engine, &q_s, &info_s, &plan_s).unwrap();
            let charged_s = serial_engine.clock().breakdown().since(&before_s);

            assert_eq!(batched.rows, serial.rows);
            assert_eq!(batched.detection_calls, serial.detection_calls);
            assert_eq!(batched.frames_considered, serial.frames_considered);
            assert_eq!(batched.frames_after_content, serial.frames_after_content);
            assert_eq!(batched.frames_after_label, serial.frames_after_label);
            assert!(
                (charged_b.detection - charged_s.detection).abs() < 1e-9,
                "detection seconds diverged: {} vs {}",
                charged_b.detection,
                charged_s.detection
            );
            assert!((charged_b.decode - charged_s.decode).abs() < 1e-9);
            assert!((charged_b.filter - charged_s.filter).abs() < 1e-9);
        }
    }

    #[test]
    fn explicit_spatial_constraints_define_the_region() {
        let e = engine();
        let sql =
            "SELECT * FROM taipei WHERE class = 'car' AND xmax(mask) < 720 AND ymin(mask) >= 100";
        let q = parse_query(sql).unwrap();
        let info = analyze(&q, &e.udfs()).unwrap();
        let plan = plan_filters(&e, &info, &SelectionOptions::all()).unwrap();
        let region = plan.region.expect("explicit constraints must yield a region");
        assert!(region.xmax <= 720.0);
        assert!(region.ymin >= 100.0);
    }
}
