//! Aggregation queries (Section 6 of the paper).
//!
//! Given an aggregate with a user-specified error tolerance and confidence, BlazeIt
//! picks between three plans (Algorithm 1):
//!
//! 1. **Query rewriting** (Section 6.2): train a specialized counting NN on the labeled
//!    set; if its bootstrap-estimated FCOUNT error on the held-out day is within the
//!    tolerance at the requested confidence, answer the query from the specialized NN
//!    alone — zero object-detection calls on the unseen data.
//! 2. **Control variates** (Section 6.3): otherwise use the specialized NN as a control
//!    variate inside the adaptive sampling loop, reducing the variance of the sampled
//!    detector counts and therefore the number of detector invocations.
//! 3. **Naive AQP** (Section 6.1): when there is not enough training data for a
//!    specialized NN, fall back to plain adaptive sampling.
//!
//! The adaptive sampling loop starts at `K/ε` samples (an ε-net argument, where `K` is
//! the range of the estimated quantity) and stops when the CLT bound
//! `Q(1 - δ/2) · σ̂_N < ε` holds, using the finite-sample (Bessel) corrected standard
//! deviation of the estimator.

use crate::context::VideoContext;
use crate::obs;
use crate::plan::{PlanStrategy, RewriteDecision, VideoPlan};
use crate::result::{AggregateMethod, QueryOutput};
use crate::stats::{mean_and_variance, normal_critical_value};
use crate::{baselines, BlazeItError, Result};
use blazeit_detect::{count_class, ObjectDetector};
use blazeit_frameql::query::{AggregateKind, QueryClass, QueryPlanInfo};
use blazeit_nn::specialized::SpecializedNN;
use blazeit_videostore::ObjectClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Minimum number of positive labeled frames required before BlazeIt will train a
/// specialized NN for an aggregate (Algorithm 1's "sufficient training data" check).
pub const MIN_TRAINING_EXAMPLES: usize = 50;

/// Options controlling an adaptive sampling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingOptions {
    /// Absolute error tolerance ε.
    pub error: f64,
    /// Confidence level (fraction), e.g. 0.95.
    pub confidence: f64,
    /// RNG seed for frame sampling.
    pub seed: u64,
    /// Hard cap on the number of sampled frames (defaults to the video length).
    pub max_samples: Option<u64>,
}

impl SamplingOptions {
    /// Builds options with the default seed from the engine configuration.
    pub fn new(error: f64, confidence: f64, seed: u64) -> SamplingOptions {
        SamplingOptions { error, confidence, seed, max_samples: None }
    }
}

/// The outcome of an adaptive sampling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingOutcome {
    /// The estimate of the frame-averaged count.
    pub estimate: f64,
    /// Number of frames sampled (= object-detection calls).
    pub samples: u64,
    /// Standard error of the estimator at termination.
    pub standard_error: f64,
    /// The fitted control-variate coefficient (0 for naive sampling).
    pub control_coefficient: f64,
}

/// Executes an aggregate query against one video, following the strategy the planner
/// resolved into its sub-plan (Algorithm 1 of the paper; see
/// [`crate::plan::plan_video`]).
pub fn execute(ctx: &VideoContext, info: &QueryPlanInfo, plan: &VideoPlan) -> Result<QueryOutput> {
    let QueryClass::Aggregate { kind } = &info.class else {
        return Err(BlazeItError::Internal("aggregate::execute called on non-aggregate".into()));
    };
    let class = info.single_class();

    match &plan.strategy {
        PlanStrategy::ExactDistinct => {
            let (value, calls) = baselines::exact_distinct_count(ctx, class)?;
            Ok(QueryOutput::Aggregate {
                value,
                standard_error: None,
                detection_calls: calls,
                method: AggregateMethod::Exact,
            })
        }
        // No error tolerance: the user asked for the exact answer.
        PlanStrategy::ExactScan => {
            let (fcount, calls) = baselines::naive_fcount(ctx, class)?;
            Ok(QueryOutput::Aggregate {
                value: finalize_kind(kind, fcount, ctx),
                standard_error: None,
                detection_calls: calls,
                method: AggregateMethod::Exact,
            })
        }
        // Not enough training data (or no single class): plain adaptive sampling.
        PlanStrategy::NaiveSampling => {
            let outcome = naive_aqp_fcount(ctx, class, budgeted_sampling(plan)?)?;
            Ok(QueryOutput::Aggregate {
                value: finalize_kind(kind, outcome.estimate, ctx),
                standard_error: Some(outcome.standard_error),
                detection_calls: outcome.samples,
                method: AggregateMethod::NaiveSampling,
            })
        }
        // Algorithm 1: specialized NN, then rewriting or control variates.
        PlanStrategy::SpecializedAggregate { decision } => {
            let class = class.ok_or_else(|| {
                BlazeItError::Internal("specialized aggregate plan without a single class".into())
            })?;
            let opts = budgeted_sampling(plan)?;
            let nn = ctx.specialized_for(&plan.heads)?;
            let decision = match decision {
                // The planner could not check the held-out error for free; do it now
                // (reading from the cached held-out score index means only the first
                // query per class set pays the batched inference for it).
                RewriteDecision::AtExecution => {
                    let heldout_scores = ctx.heldout_score_index(&nn)?;
                    let estimate = nn.estimate_fcount_error_from_scores(
                        &heldout_scores,
                        &ctx.labeled().heldout().class_counts(class),
                        class,
                        ctx.config().bootstrap_samples,
                        ctx.config().sampling_seed,
                    )?;
                    if estimate.prob_error_within(opts.error) >= opts.confidence {
                        RewriteDecision::Rewrite
                    } else {
                        RewriteDecision::ControlVariates
                    }
                }
                resolved => *resolved,
            };
            match decision {
                RewriteDecision::Rewrite => {
                    let value = rewrite_fcount(ctx, &nn, class)?;
                    Ok(QueryOutput::Aggregate {
                        value: finalize_kind(kind, value, ctx),
                        standard_error: None,
                        detection_calls: 0,
                        method: AggregateMethod::QueryRewriting,
                    })
                }
                _ => {
                    let outcome = control_variate_fcount(ctx, &nn, class, opts)?;
                    Ok(QueryOutput::Aggregate {
                        value: finalize_kind(kind, outcome.estimate, ctx),
                        standard_error: Some(outcome.standard_error),
                        detection_calls: outcome.samples,
                        method: AggregateMethod::ControlVariates,
                    })
                }
            }
        }
        other => Err(BlazeItError::Internal(format!(
            "aggregate::execute called with non-aggregate strategy {other:?}"
        ))),
    }
}

/// The sub-plan's sampling options with any detector-call budget folded into the cap.
fn budgeted_sampling(plan: &VideoPlan) -> Result<SamplingOptions> {
    let mut opts = plan.sampling.ok_or_else(|| {
        BlazeItError::Internal("sampling aggregate plan carries no sampling options".into())
    })?;
    if let Some(budget) = plan.detection_budget {
        opts.max_samples = Some(opts.max_samples.map_or(budget, |m| m.min(budget)));
    }
    Ok(opts)
}

/// Converts a frame-averaged count into the requested aggregate.
fn finalize_kind(kind: &AggregateKind, fcount: f64, ctx: &VideoContext) -> f64 {
    match kind {
        AggregateKind::FrameAveragedCount => fcount,
        AggregateKind::Count => fcount * ctx.video().len() as f64,
        AggregateKind::CountDistinct(_) => fcount,
    }
}

/// Answers an FCOUNT query directly from the specialized NN (query rewriting): the
/// mean of the NN's expected count over every frame of the unseen video. No object
/// detection is performed; the per-frame scores come from the context's cached
/// batched score index, so only the first query per class set pays inference.
pub fn rewrite_fcount(
    ctx: &VideoContext,
    nn: &Arc<SpecializedNN>,
    class: ObjectClass,
) -> Result<f64> {
    let _rewrite = obs::span("query rewrite");
    let head = nn
        .head_index(class)
        .ok_or_else(|| BlazeItError::Internal(format!("no head for class {class}")))?;
    let scores = ctx.score_index(nn)?;
    let mut total = 0.0f64;
    for frame in 0..scores.num_frames() {
        total += scores.expected_count(frame, head);
    }
    Ok(total / scores.num_frames().max(1) as f64)
}

/// The number of detector samples at which adaptive sampling starts: `K / ε`, where `K`
/// is the range of the estimated quantity (max count + 1).
pub fn initial_sample_size(range_k: usize, error: f64) -> u64 {
    ((range_k.max(1) as f64) / error.max(1e-6)).ceil() as u64
}

fn detector_count(ctx: &VideoContext, frame: u64, class: Option<ObjectClass>) -> usize {
    let detections = ctx.detector().detect(&ctx.video(), frame);
    match class {
        Some(c) => count_class(&detections, c),
        None => detections.len(),
    }
}

/// Plain adaptive sampling (naive AQP): uniform random frames, detector counts, CLT
/// stopping rule.
pub fn naive_aqp_fcount(
    ctx: &VideoContext,
    class: Option<ObjectClass>,
    opts: SamplingOptions,
) -> Result<SamplingOutcome> {
    adaptive_sampling(ctx, class, opts, None)
}

/// Adaptive sampling with the specialized NN as a control variate.
///
/// The NN's expected count is computed for *every* frame of the unseen video (cheap:
/// ~10,000 fps simulated), giving the control variate's exact mean `τ` and variance.
/// Each sampled frame contributes the pair `(m_i, t_i)`; the coefficient
/// `c = -Cov(m, t) / Var(t)` is re-estimated every round and the estimator
/// `m̂ = m̄ + c (t̄ - τ)` replaces the plain sample mean, shrinking the variance by the
/// squared correlation.
pub fn control_variate_fcount(
    ctx: &VideoContext,
    nn: &Arc<SpecializedNN>,
    class: ObjectClass,
    opts: SamplingOptions,
) -> Result<SamplingOutcome> {
    let t_all = specialized_scores(ctx, nn, class)?;
    control_variate_fcount_with_scores(ctx, &t_all, class, opts)
}

/// Computes the specialized NN's expected count for every frame of the unseen video
/// (the control variate's values), reading from the context's cached batched score
/// index. The first call per class set charges (batched) specialized-inference
/// time; repeated calls are free.
pub fn specialized_scores(
    ctx: &VideoContext,
    nn: &Arc<SpecializedNN>,
    class: ObjectClass,
) -> Result<Vec<f64>> {
    let head = nn
        .head_index(class)
        .ok_or_else(|| BlazeItError::Internal(format!("no head for class {class}")))?;
    let scores = ctx.score_index(nn)?;
    Ok((0..scores.num_frames()).map(|frame| scores.expected_count(frame, head)).collect())
}

/// Control-variate sampling reusing precomputed per-frame specialized-NN scores (the
/// "indexed" scenario, and what lets sweep harnesses score each video only once).
pub fn control_variate_fcount_with_scores(
    ctx: &VideoContext,
    t_all: &[f64],
    class: ObjectClass,
    opts: SamplingOptions,
) -> Result<SamplingOutcome> {
    if t_all.len() != ctx.video().len() as usize {
        return Err(BlazeItError::Internal(format!(
            "control variate scores cover {} frames but the video has {}",
            t_all.len(),
            ctx.video().len()
        )));
    }
    let (tau, var_t) = mean_and_variance(t_all);
    adaptive_sampling(
        ctx,
        Some(class),
        opts,
        Some(ControlVariate { t_all: t_all.to_vec(), tau, var_t }),
    )
}

struct ControlVariate {
    t_all: Vec<f64>,
    tau: f64,
    var_t: f64,
}

fn adaptive_sampling(
    ctx: &VideoContext,
    class: Option<ObjectClass>,
    opts: SamplingOptions,
    control: Option<ControlVariate>,
) -> Result<SamplingOutcome> {
    let _sample = obs::span("sample-verify");
    if opts.error <= 0.0 {
        return Err(BlazeItError::Unsupported("error tolerance must be positive".into()));
    }
    if !(0.0..1.0).contains(&opts.confidence) {
        return Err(BlazeItError::Unsupported("confidence must be in (0, 1)".into()));
    }
    let video = ctx.video();
    let num_frames = video.len();
    let range_k = match class {
        Some(c) => ctx.default_max_count(c, 1) + 1,
        None => ctx.labeled().train().counts.iter().map(|cv| cv.total()).max().unwrap_or(1) + 1,
    };
    let z = normal_critical_value(opts.confidence);
    // An explicit max_samples (e.g. a detector-call budget from the plan) is a hard
    // cap: it truncates even the initial K/eps draw.
    let max_samples = opts.max_samples.unwrap_or(num_frames).max(1);
    let initial = initial_sample_size(range_k, opts.error).min(num_frames.max(1)).min(max_samples);
    let batch = (initial / 10).max(25);

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut m_samples: Vec<f64> = Vec::new();
    let mut t_samples: Vec<f64> = Vec::new();

    let draw = |rng: &mut StdRng, m: &mut Vec<f64>, t: &mut Vec<f64>| {
        let frame = rng.gen_range(0..num_frames);
        m.push(detector_count(ctx, frame, class) as f64);
        if let Some(cv) = &control {
            // blazeit-lint: allow(panic-site::index) -- frame ranges over 0..num_frames and t_all
            // was sized with one entry per frame
            t.push(cv.t_all[frame as usize]);
        }
    };

    for _ in 0..initial {
        draw(&mut rng, &mut m_samples, &mut t_samples);
    }

    loop {
        let (estimate, std_err, coefficient) = estimator_state(&m_samples, &t_samples, &control);
        if z * std_err < opts.error || m_samples.len() as u64 >= max_samples {
            return Ok(SamplingOutcome {
                estimate,
                samples: m_samples.len() as u64,
                standard_error: std_err,
                control_coefficient: coefficient,
            });
        }
        // The hard cap also truncates the final batch, never just the between-batch
        // check — otherwise a round could overshoot the budget by up to batch - 1.
        let room = max_samples - m_samples.len() as u64;
        for _ in 0..batch.min(room) {
            draw(&mut rng, &mut m_samples, &mut t_samples);
        }
    }
}

/// Computes the current estimate, its standard error, and the control coefficient.
fn estimator_state(
    m_samples: &[f64],
    t_samples: &[f64],
    control: &Option<ControlVariate>,
) -> (f64, f64, f64) {
    let n = m_samples.len().max(1) as f64;
    let mean_m = m_samples.iter().sum::<f64>() / n;
    match control {
        None => {
            let std = sample_std(m_samples);
            (mean_m, std / n.sqrt(), 0.0)
        }
        Some(cv) => {
            let mean_t = t_samples.iter().sum::<f64>() / n;
            let c = if cv.var_t > 1e-12 {
                let cov = sample_cov(m_samples, t_samples);
                -cov / cv.var_t
            } else {
                0.0
            };
            let adjusted: Vec<f64> =
                m_samples.iter().zip(t_samples).map(|(m, t)| m + c * (t - cv.tau)).collect();
            let estimate = mean_m + c * (mean_t - cv.tau);
            let std = sample_std(&adjusted);
            (estimate, std / n.sqrt(), c)
        }
    }
}

fn sample_std(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return f64::INFINITY;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    var.sqrt()
}

fn sample_cov(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / (n - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BlazeIt;
    use blazeit_videostore::DatasetPreset;

    fn engine() -> BlazeIt {
        BlazeIt::for_preset(DatasetPreset::Taipei, 2_000).unwrap()
    }

    #[test]
    fn initial_sample_size_follows_k_over_eps() {
        assert_eq!(initial_sample_size(5, 0.1), 50);
        assert_eq!(initial_sample_size(5, 0.01), 500);
        assert_eq!(initial_sample_size(0, 0.1), 10);
    }

    #[test]
    fn naive_sampling_estimates_fcount_within_tolerance() {
        let e = engine();
        let (true_fcount, _) = baselines::oracle_fcount(&e, Some(ObjectClass::Car));
        let outcome =
            naive_aqp_fcount(&e, Some(ObjectClass::Car), SamplingOptions::new(0.1, 0.95, 17))
                .unwrap();
        assert!(outcome.samples >= initial_sample_size(2, 0.1));
        assert!(
            (outcome.estimate - true_fcount).abs() < 0.25,
            "estimate {} vs truth {true_fcount}",
            outcome.estimate
        );
        assert_eq!(outcome.control_coefficient, 0.0);
    }

    #[test]
    fn control_variates_use_fewer_samples_than_naive() {
        let e = engine();
        let class = ObjectClass::Car;
        let nn = e.specialized_for(&[(class, e.default_max_count(class, 1))]).unwrap();
        let opts = SamplingOptions::new(0.03, 0.95, 5);
        let naive = naive_aqp_fcount(&e, Some(class), opts).unwrap();
        let cv = control_variate_fcount(&e, &nn, class, opts).unwrap();
        assert!(
            cv.samples <= naive.samples,
            "control variates used {} samples vs naive {}",
            cv.samples,
            naive.samples
        );
        assert!(cv.control_coefficient.abs() > 0.0);
    }

    #[test]
    fn rewriting_matches_ground_truth_roughly() {
        let e = engine();
        let class = ObjectClass::Car;
        let nn = e.specialized_for(&[(class, e.default_max_count(class, 1))]).unwrap();
        let value = rewrite_fcount(&e, &nn, class).unwrap();
        let (true_fcount, _) = baselines::oracle_fcount(&e, Some(class));
        assert!(
            (value - true_fcount).abs() < 0.5,
            "rewriting gave {value}, detector ground truth {true_fcount}"
        );
    }

    #[test]
    fn invalid_options_rejected() {
        let e = engine();
        assert!(naive_aqp_fcount(&e, None, SamplingOptions::new(0.0, 0.95, 1)).is_err());
        assert!(naive_aqp_fcount(&e, None, SamplingOptions::new(0.1, 1.5, 1)).is_err());
    }

    #[test]
    fn execute_exact_when_no_error_bound() {
        let e = engine();
        let result = e.query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car'").unwrap();
        match result.output {
            QueryOutput::Aggregate { method, detection_calls, .. } => {
                assert_eq!(method, AggregateMethod::Exact);
                assert_eq!(detection_calls, e.video().len());
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn execute_falls_back_to_naive_sampling_for_rare_class() {
        // Birds never appear in taipei, so there is no training data for a specialized
        // NN and the engine must fall back to plain AQP.
        let e = engine();
        let result = e
            .query("SELECT FCOUNT(*) FROM taipei WHERE class = 'bird' ERROR WITHIN 0.1 AT CONFIDENCE 95%")
            .unwrap();
        match result.output {
            QueryOutput::Aggregate { method, value, .. } => {
                assert_eq!(method, AggregateMethod::NaiveSampling);
                assert!(value.abs() < 0.05, "bird FCOUNT should be ~0, got {value}");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn count_star_scales_fcount_by_frames() {
        let e = engine();
        let fcount = e
            .query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 90%")
            .unwrap()
            .output
            .aggregate_value()
            .unwrap();
        let count = e
            .query("SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 90%")
            .unwrap()
            .output
            .aggregate_value()
            .unwrap();
        let frames = e.video().len() as f64;
        assert!(
            (count - fcount * frames).abs() / (fcount * frames) < 0.5,
            "COUNT(*) {count} is not consistent with FCOUNT {fcount} * {frames}"
        );
    }
}
