//! Per-video execution state: the video, its labeled set, and its caches.
//!
//! A [`VideoContext`] is one registered video of a [`Catalog`](crate::catalog::Catalog):
//! the unseen test-day video, the labeled set (training + held-out days annotated
//! offline), the detector configured for this stream, the UDF registry, and two caches
//! keyed by the specialized networks' output heads:
//!
//! * `nn_cache` — trained specialized networks. Once a network has been trained for
//!   some class set, later queries reuse it and pay only inference (the paper's
//!   "BlazeIt (no train)" scenario).
//! * `score_cache` — per-video [`ScoreMatrix`] indexes produced by the batched
//!   scoring pipeline, keyed by video identity + head set + feature configuration.
//!   The first query over a class set scores the whole video once
//!   ([`SpecializedNN::score_video`]); every later query answers from the cached
//!   index and pays *no* specialized inference at all — the paper's
//!   "BlazeIt (indexed)" scenario made concrete.
//!
//! Both caches live on the context (not on any engine or session), so every query
//! routed to this video — from any session over the owning catalog — shares them.
//!
//! When the owning catalog was opened with
//! [`Catalog::with_index_store`](crate::catalog::Catalog::with_index_store), both
//! caches become the memory tier of a read-through / write-behind hierarchy over
//! the durable [`IndexStore`]: a miss consults the disk store before training or
//! scoring (a warm load charges *nothing* to the simulated clock), and every
//! freshly trained network or built index is written behind to disk. Invalid
//! artifacts (truncated, corrupted, version-bumped) never fail a query: the
//! context falls back to recomputing and overwrites the bad file.

use crate::config::BlazeItConfig;
use crate::fault::HealthState;
use crate::labeled::LabeledSet;
use crate::lockorder::{lock_ordered, OrderedGuard, RANK_LIVE_INDEX, RANK_NN_CACHE, RANK_VIDEO};
use crate::obs;
use crate::store::{IndexStore, StoreResult};
use crate::stream::StreamState;
use crate::sync::{AtomicU64, Mutex, Ordering, RwLock};
use crate::{BlazeItError, Result};
use blazeit_detect::{SimClock, SimulatedDetector};
use blazeit_frameql::{builtin_udfs, UdfRegistry};
use blazeit_nn::specialized::{SpecializedConfig, SpecializedHead, SpecializedNN};
use blazeit_nn::ScoreMatrix;
use blazeit_videostore::{ObjectClass, Video};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a over `bytes`: a tiny, dependency-free, stable fingerprint (the
/// config fingerprint must not vary across runs, which rules out `std`'s
/// randomized `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How warm a per-video cache is for a given head set — what `EXPLAIN` surfaces
/// as the cost the plan will actually pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheWarmth {
    /// Not cached anywhere: execution trains / scores (and charges the clock).
    Cold,
    /// Persisted in the catalog's index store but not yet in memory: execution
    /// loads it from disk, charging **zero** simulated inference or training.
    Disk,
    /// Already in the in-memory cache: execution reuses it directly.
    Memory,
}

impl CacheWarmth {
    /// The label `EXPLAIN` renders (`cold` / `disk-warm` / `warm`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheWarmth::Cold => "cold",
            CacheWarmth::Disk => "disk-warm",
            CacheWarmth::Memory => "warm",
        }
    }

    /// Whether execution can reuse the artifact without training / scoring
    /// (memory- or disk-warm).
    pub fn is_warm(&self) -> bool {
        !matches!(self, CacheWarmth::Cold)
    }
}

/// One entry of the live (test-day) score-index cache: the scores, the exact
/// network that produced them, and the model generation they belong to.
///
/// Holding the network alongside its scores is what makes both streaming
/// ingestion and atomic model swaps possible: appending frames needs the
/// producing network to score the new rows, and a subscribed query snapshotting
/// `(nn, scores, generation)` under one lock acquisition is guaranteed to
/// answer from exactly one model generation.
pub(crate) struct LiveIndex {
    /// The network whose weights produced `scores`.
    pub(crate) nn: Arc<SpecializedNN>,
    /// Per-frame scores covering exactly the context's current video length.
    pub(crate) scores: Arc<ScoreMatrix>,
    /// Model generation: 0 for the labeled-set-trained network, incremented by
    /// every drift-triggered refresh swap.
    pub(crate) generation: u64,
}

/// One registered video and everything cached for it.
///
/// # Lock order
///
/// Streaming makes several fields interior-mutable. Code acquiring more than
/// one of these locks must follow the order *drift monitor → `live_index` →
/// `nn_cache` → `video`* (the `heldout_cache` is an independent leaf). Ingestion
/// holds `live_index` across the video swap, so any reader that takes
/// `live_index` first observes a consistent `(video, index)` pair.
pub struct VideoContext {
    /// The current video — for a streaming context, the ingested prefix of the
    /// full generated day; swapped atomically as frames arrive.
    pub(crate) video: Mutex<Arc<Video>>,
    labeled: Arc<LabeledSet>,
    config: BlazeItConfig,
    /// Fingerprint of `config`, fixed at construction — one third of the
    /// serving layer's cache key (name × data generation × config).
    config_fingerprint: u64,
    clock: Arc<SimClock>,
    detector: SimulatedDetector,
    /// The UDF registry, copy-on-write: readers take a cheap `Arc` snapshot,
    /// registration clones-and-swaps so it is `&self` (callable through the
    /// shared catalog) without blocking queries mid-evaluation.
    udfs: RwLock<Arc<UdfRegistry>>,
    /// Monotone counter of *answer-changing* events on this context: stream
    /// ingestion, drift-refresh publication, and UDF registration all bump it.
    /// The serving layer keys its result cache on this, so a bump invalidates
    /// exactly the cached answers that could have changed — and nothing else.
    data_generation: AtomicU64,
    /// Trained specialized networks by normalized head key (the *current*
    /// generation; drift refreshes replace entries in place).
    pub(crate) nn_cache: Mutex<HashMap<String, Arc<SpecializedNN>>>,
    /// Live test-day score indexes by normalized head key; see [`LiveIndex`].
    pub(crate) live_index: Mutex<HashMap<String, LiveIndex>>,
    /// Held-out-day score indexes by full score key (the held-out day never
    /// grows, so these need no streaming machinery).
    heldout_cache: Mutex<HashMap<String, Arc<ScoreMatrix>>>,
    /// The durable tier behind the caches, plus this video's directory name
    /// inside it (its normalized stream name).
    pub(crate) store: Option<(Arc<IndexStore>, String)>,
    /// Streaming state (full-day capacity video + drift monitor); `None` for
    /// ordinary, fixed-length registrations.
    pub(crate) stream: Option<StreamState>,
    /// Robustness bookkeeping: store degradation, retry counters, the
    /// last-error ring buffer, and retrain-failure state. Every store failure
    /// on this context's read-through/write-behind paths is recorded here —
    /// degradation is always queryable and rendered by EXPLAIN, never silent.
    health: HealthState,
}

impl std::fmt::Debug for VideoContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let video = self.video();
        f.debug_struct("VideoContext")
            .field("video", &video.name())
            .field("frames", &video.len())
            .field("detection_method", &self.config.detection_method)
            .field("stream", &self.stream.is_some())
            .finish()
    }
}

impl VideoContext {
    /// Creates a context over `video` (the unseen test data) with a pre-built labeled
    /// set, charging all expensive work to `clock` (usually the owning catalog's).
    pub fn new(
        video: Video,
        labeled: Arc<LabeledSet>,
        config: BlazeItConfig,
        clock: Arc<SimClock>,
    ) -> VideoContext {
        Self::with_store(video, labeled, config, clock, None)
    }

    /// Like [`VideoContext::new`], additionally wiring the caches into a durable
    /// [`IndexStore`] (what [`Catalog::with_index_store`](crate::catalog::Catalog::with_index_store)
    /// passes for every registered video).
    pub fn with_store(
        video: Video,
        labeled: Arc<LabeledSet>,
        config: BlazeItConfig,
        clock: Arc<SimClock>,
        store: Option<Arc<IndexStore>>,
    ) -> VideoContext {
        Self::with_parts(video, labeled, config, clock, store, None)
    }

    /// The full constructor: like [`VideoContext::with_store`], optionally with
    /// streaming state (what
    /// [`Catalog::register_stream`](crate::catalog::Catalog::register_stream)
    /// passes).
    pub(crate) fn with_parts(
        video: Video,
        labeled: Arc<LabeledSet>,
        config: BlazeItConfig,
        clock: Arc<SimClock>,
        store: Option<Arc<IndexStore>>,
        stream: Option<StreamState>,
    ) -> VideoContext {
        let detector = SimulatedDetector::new(
            config.detection_method,
            config.detection_threshold,
            Arc::clone(&clock),
        );
        let store = store.map(|s| {
            let dir = crate::catalog::normalize(video.name());
            (s, dir)
        });
        let health = HealthState::new(config.sampling_seed);
        let config_fingerprint = fnv1a(format!("{config:?}").as_bytes());
        VideoContext {
            // Ranked construction enrolls each lock in the model checker's
            // hierarchy oracle; `lock_ordered` asserts the same table at
            // acquisition time in debug builds.
            video: Mutex::ranked(RANK_VIDEO, "video", Arc::new(video)),
            labeled,
            config,
            config_fingerprint,
            clock,
            detector,
            udfs: RwLock::new(Arc::new(builtin_udfs())),
            data_generation: AtomicU64::new(0),
            nn_cache: Mutex::ranked(RANK_NN_CACHE, "nn_cache", HashMap::new()),
            live_index: Mutex::ranked(RANK_LIVE_INDEX, "live_index", HashMap::new()),
            heldout_cache: Mutex::new(HashMap::new()),
            store,
            stream,
            health,
        }
    }

    /// The durable index store behind this context's caches, if any.
    pub fn index_store(&self) -> Option<&Arc<IndexStore>> {
        self.store.as_ref().map(|(s, _)| s)
    }

    /// This context's health state: store degradation, retry counters, the
    /// recent-error ring buffer, and retrain-failure records. Snapshot it with
    /// [`HealthState::report`]; EXPLAIN renders the same snapshot.
    pub fn health(&self) -> &HealthState {
        &self.health
    }

    /// Acquires the `video` lock at its documented rank (last in the monitor →
    /// live_index → nn_cache → video order; asserted in debug builds).
    pub(crate) fn lock_video(&self) -> OrderedGuard<'_, Arc<Video>> {
        lock_ordered(RANK_VIDEO, "video", &self.video)
    }

    /// Acquires the `nn_cache` lock at its documented rank.
    pub(crate) fn lock_nn_cache(&self) -> OrderedGuard<'_, HashMap<String, Arc<SpecializedNN>>> {
        lock_ordered(RANK_NN_CACHE, "nn_cache", &self.nn_cache)
    }

    /// Acquires the `live_index` lock at its documented rank.
    pub(crate) fn lock_live_index(&self) -> OrderedGuard<'_, HashMap<String, LiveIndex>> {
        lock_ordered(RANK_LIVE_INDEX, "live_index", &self.live_index)
    }

    /// Runs one store operation through the robustness pipeline:
    ///
    /// * skipped entirely (returns `None`) while the context is degraded to
    ///   memory-only mode, except for the periodic probe that tests whether the
    ///   store healed;
    /// * transient errors are retried under the configured
    ///   [`RetryPolicy`](crate::fault::RetryPolicy), each backoff charged to
    ///   the simulated clock;
    /// * the outcome is recorded in [`HealthState`] — successes clear the
    ///   failure streak (healing a degraded context), failures are pushed into
    ///   the error ring and hard/exhausted-transient failures count toward
    ///   degradation.
    ///
    /// `what` labels the operation in the health report's error ring.
    pub(crate) fn store_op<T>(
        &self,
        what: &'static str,
        mut op: impl FnMut(&IndexStore, &str) -> StoreResult<T>,
    ) -> Option<T> {
        let (store, dir) = self.store.as_ref()?;
        if !self.health.store_attempt_allowed() {
            return None;
        }
        let outcome =
            self.health.run_with_retry(&self.config.store_retry, &self.clock, || op(store, dir));
        match outcome {
            Ok(value) => {
                self.health.record_store_success();
                Some(value)
            }
            Err(error) => {
                self.health.record_store_error(what, &error);
                None
            }
        }
    }

    /// The unseen (test) video queries run over — a cheap atomic snapshot.
    ///
    /// For a streaming context this is the currently ingested prefix; it is
    /// swapped (never mutated) as frames arrive, so an executor that takes one
    /// snapshot works over one consistent set of frames for its whole run even
    /// while ingestion continues.
    pub fn video(&self) -> Arc<Video> {
        Arc::clone(&self.lock_video())
    }

    /// Whether this context is a live stream (registered through
    /// [`Catalog::register_stream`](crate::catalog::Catalog::register_stream)).
    pub fn is_stream(&self) -> bool {
        self.stream.is_some()
    }

    /// The labeled set.
    pub fn labeled(&self) -> &Arc<LabeledSet> {
        &self.labeled
    }

    /// The context configuration.
    pub fn config(&self) -> &BlazeItConfig {
        &self.config
    }

    /// The simulated clock all costs are charged to.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The configured object detector (charges the shared clock on every call).
    pub fn detector(&self) -> &SimulatedDetector {
        &self.detector
    }

    /// A snapshot of the UDF registry. Cheap (`Arc` clone); registrations that
    /// land after the snapshot are not visible through it, which is exactly
    /// the isolation a running query needs.
    pub fn udfs(&self) -> Arc<UdfRegistry> {
        Arc::clone(&self.udfs.read())
    }

    /// Registers (or replaces) a UDF available to queries on this video.
    ///
    /// Copy-on-write: the registry is cloned, extended, and swapped under a
    /// short write lock, so this is `&self` — callable on a context shared
    /// across sessions — and in-flight queries keep evaluating against the
    /// snapshot they took. Bumps the data generation: a redefined UDF can
    /// change answers, so cached results must not outlive it.
    pub fn register_udf(
        &self,
        name: &str,
        frame_liftable: bool,
        func: impl Fn(
                &blazeit_videostore::Frame,
                &blazeit_videostore::BoundingBox,
            ) -> blazeit_frameql::Value
            + Send
            + Sync
            + 'static,
    ) {
        let mut slot = self.udfs.write();
        let mut next = UdfRegistry::clone(&**slot);
        next.register(name, frame_liftable, func);
        *slot = Arc::new(next);
        drop(slot);
        self.bump_data_generation();
    }

    /// The data generation: how many answer-changing events (ingested frames
    /// batches, drift-refresh publications, UDF registrations) this context
    /// has seen. The serving layer's cache keys include it, so stale answers
    /// are unreachable the moment it moves.
    pub fn data_generation(&self) -> u64 {
        self.data_generation.load(Ordering::SeqCst)
    }

    /// Advances the data generation, returning the new value.
    pub(crate) fn bump_data_generation(&self) -> u64 {
        self.data_generation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The fingerprint of this context's configuration (fixed at
    /// construction) — the config component of the serving cache key.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// Normalizes a requested head set into the form every cache key and trained
    /// configuration derives from: sorted by class, `max_count` clamped to at
    /// least 1 (a softmax head needs `0..=1` at minimum).
    ///
    /// Clamping *before* keying is what keeps the caches coherent: a
    /// `(class, 0)` request trains exactly the network a `(class, 1)` request
    /// trains, so both must hit the same cache entry. (Keying on the caller's
    /// raw value used to cache under `"class:0"` while the equivalent
    /// `(class, 1)` request missed, re-trained, and double-charged the clock.)
    pub(crate) fn normalized_heads(heads: &[(ObjectClass, usize)]) -> Vec<(ObjectClass, usize)> {
        let mut sorted: Vec<(ObjectClass, usize)> =
            heads.iter().map(|&(c, m)| (c, m.max(1))).collect();
        sorted.sort_by_key(|(c, _)| c.index());
        sorted
    }

    /// The cache key for a set of `(class, max_count)` heads. Order-insensitive
    /// and clamp-insensitive: the key is always derived from
    /// [`VideoContext::normalized_heads`], so every head-set formulation that
    /// trains the same network keys the same entry.
    pub(crate) fn head_key(heads: &[(ObjectClass, usize)]) -> String {
        Self::normalized_heads(heads)
            .iter()
            .map(|(c, m)| format!("{}:{}", c.name(), m))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// The cache key for a score index: full video identity (name, day, seed,
    /// length, frames scored) + the network's full configuration (heads, feature
    /// config, hidden widths, init seed, training settings, cost profile) + a
    /// content fingerprint of the network's trained weights.
    ///
    /// The day/seed components distinguish the test-day index from the held-out
    /// index even when both days are the same length and fully annotated; the
    /// configuration components come from the *network being scored* (not the
    /// context config). The weights fingerprint is the load-bearing part for
    /// sharing: a score matrix is a pure function of (video, weights), so two
    /// networks with identical configurations but different weights — trained on
    /// different labels, e.g. under a different detector threshold or labeled
    /// stride, or supplied externally — can never serve each other's scores,
    /// in memory or through the durable store. (Every key string is also stored
    /// *inside* its artifact and verified on load, so anything the key
    /// distinguishes the store provably cannot confuse.)
    pub(crate) fn score_key(video: &Video, frames_scored: usize, nn: &SpecializedNN) -> String {
        let config = nn.config();
        let heads: Vec<(ObjectClass, usize)> =
            config.heads.iter().map(|h| (h.class, h.max_count)).collect();
        format!(
            "{}#day{}#vseed{}#{}#{}#{:?}#{:?}#nnseed{}#{:?}#{:?}#wfp{:016x}#{}",
            video.name(),
            video.config().day,
            video.config().seed,
            video.len(),
            frames_scored,
            config.features,
            config.hidden,
            config.seed,
            config.train,
            config.cost,
            nn.weights_fingerprint(),
            Self::head_key(&heads),
        )
    }

    /// The durable-store key for a trained specialized network: the labeled
    /// training data's identity (training-day video, number of labeled frames,
    /// the detector that produced the labels) + the full specialized
    /// configuration (via [`VideoContext::score_key`] over the training day).
    ///
    /// The in-memory `nn_cache` keys by head set alone because a context's
    /// configuration and labeled set are fixed for its lifetime; the disk store
    /// is shared across catalog instances with arbitrary configurations, so its
    /// key must pin everything the trained weights depend on — otherwise a
    /// config or dataset change would silently serve a stale network forever.
    fn nn_store_key(&self, normalized: &[(ObjectClass, usize)]) -> String {
        let config = self.context_spec_config(normalized);
        let train_video = self.labeled.train_video();
        format!(
            "nn#{}#day{}#vseed{}#{}#{}#{:?}#{:?}#nnseed{}#{:?}#{:?}#det{:?}#thr{}#lstride{}#{}",
            train_video.name(),
            train_video.config().day,
            train_video.config().seed,
            train_video.len(),
            self.labeled.train().frames.len(),
            config.features,
            config.hidden,
            config.seed,
            config.train,
            config.cost,
            self.config.detection_method,
            self.config.detection_threshold,
            self.config.labeled_stride,
            Self::head_key(normalized),
        )
    }

    /// The specialized-network configuration this context trains for a sorted
    /// head set (shared by [`VideoContext::specialized_for`] and the cache-key
    /// derivations so they can never disagree).
    pub(crate) fn context_spec_config(&self, sorted: &[(ObjectClass, usize)]) -> SpecializedConfig {
        let spec_heads: Vec<SpecializedHead> = sorted
            .iter()
            .map(|&(class, max_count)| SpecializedHead { class, max_count: max_count.max(1) })
            .collect();
        let mut spec_config = SpecializedConfig::for_heads(spec_heads);
        spec_config.features = self.config.features;
        spec_config.hidden = self.config.specialized_hidden.clone();
        spec_config.train = self.config.train;
        spec_config.cost = self.config.cost;
        spec_config.seed = self.config.sampling_seed ^ 0x5EC1_A112;
        spec_config
    }

    /// Returns (training if necessary) a specialized network with one counting head per
    /// requested `(class, max_count)` pair.
    ///
    /// Lookup is read-through: in-memory cache, then the durable index store
    /// (a disk-warm load charges *nothing* to the shared clock), then training
    /// (charged). Freshly trained networks are written behind to the store, so
    /// they survive this catalog. An invalid stored artifact falls back to
    /// retraining and is overwritten.
    pub fn specialized_for(&self, heads: &[(ObjectClass, usize)]) -> Result<Arc<SpecializedNN>> {
        if heads.is_empty() {
            return Err(BlazeItError::Internal(
                "specialized_for requires at least one head".into(),
            ));
        }
        let normalized = Self::normalized_heads(heads);
        if let Some(nn) = self.lookup_specialized(&normalized) {
            obs::count(obs::COUNTER_CACHE_HITS, 1);
            return Ok(nn);
        }

        let _train = obs::span("train specialized");
        let spec_config = self.context_spec_config(&normalized);
        let train_day = self.labeled.train();
        let (nn, _report) = SpecializedNN::train(
            spec_config,
            self.labeled.train_video(),
            &train_day.frames,
            &train_day.counts,
            Arc::clone(&self.clock),
        )?;
        let nn = Arc::new(nn);
        // Write-behind; a failed write degrades to in-memory-only caching
        // rather than failing the query, recorded in the health state.
        self.store_op("store specialized nn", |store, dir| {
            store.store_network(dir, &self.nn_store_key(&normalized), &nn)
        });
        self.lock_nn_cache().insert(Self::head_key(&normalized), Arc::clone(&nn));
        Ok(nn)
    }

    /// The trained network for an already-normalized head set, without training:
    /// memory cache first, then the durable store (the disk tier keys by the
    /// full training identity, see [`VideoContext::nn_store_key`]; a successful
    /// load is promoted into the memory cache and charges nothing). An invalid
    /// stored artifact reads as a miss — callers recompute and the write-behind
    /// replaces the bad file.
    fn lookup_specialized(
        &self,
        normalized: &[(ObjectClass, usize)],
    ) -> Option<Arc<SpecializedNN>> {
        let key = Self::head_key(normalized);
        if let Some(nn) = self.lock_nn_cache().get(&key) {
            return Some(Arc::clone(nn));
        }
        let nn = self.store_op("load specialized nn", |store, dir| {
            store.load_network(dir, &self.nn_store_key(normalized), &self.clock)
        })??;
        let nn = Arc::new(nn);
        self.lock_nn_cache().insert(key, Arc::clone(&nn));
        Some(nn)
    }

    /// The default counting head size for `class`, chosen by the paper's rule: the
    /// highest count appearing in at least `count_class_min_fraction` of the labeled
    /// frames, and never below `at_least`.
    pub fn default_max_count(&self, class: ObjectClass, at_least: usize) -> usize {
        let counts = self.labeled.train().class_counts(class);
        let head =
            SpecializedHead::from_counts(class, counts, self.config.count_class_min_fraction);
        head.max_count.max(at_least).max(1)
    }

    /// Whether a specialized network for these heads is already trained and
    /// available without retraining (in memory or persisted in the index store).
    pub fn has_cached_specialized(&self, heads: &[(ObjectClass, usize)]) -> bool {
        self.specialized_warmth(heads).is_warm()
    }

    /// The cached specialized network for these heads, if one is available
    /// without training: in memory, or loaded (free of simulated cost) from the
    /// durable store. Never trains; never charges the clock — this is what free
    /// plan-time inspection uses, and it agrees with
    /// [`VideoContext::has_cached_specialized`] by construction.
    pub fn cached_specialized(&self, heads: &[(ObjectClass, usize)]) -> Option<Arc<SpecializedNN>> {
        self.lookup_specialized(&Self::normalized_heads(heads))
    }

    /// The per-video score index for `nn` over the unseen (test) video: every frame
    /// scored by the batched pipeline, cached so repeated queries over the same
    /// class set pay specialized inference only once (the paper's
    /// "BlazeIt (indexed)" scenario).
    ///
    /// The first call charges the full-video inference cost to the shared clock;
    /// later calls are free.
    pub fn score_index(&self, nn: &Arc<SpecializedNN>) -> Result<Arc<ScoreMatrix>> {
        let heads: Vec<(ObjectClass, usize)> =
            nn.heads().iter().map(|h| (h.class, h.max_count)).collect();
        let key = Self::head_key(&heads);
        // The lock is held across the build so two concurrent first queries
        // cannot both score the video (which would double-charge the clock).
        // It also pins the (video, index) pair: ingestion swaps the video only
        // while holding this lock, so the snapshot below is consistent.
        let mut cache = self.lock_live_index();
        let video = self.video();
        if let Some(entry) = cache.get(&key) {
            if entry.nn.weights_fingerprint() == nn.weights_fingerprint()
                && entry.scores.num_frames() as u64 == video.len()
            {
                obs::count(obs::COUNTER_CACHE_HITS, 1);
                return Ok(Arc::clone(&entry.scores));
            }
        }
        let skey = Self::score_key(&video, video.len() as usize, nn);
        let scores = if let Some(scores) = self.load_stored_scores(&skey) {
            obs::count(obs::COUNTER_CACHE_HITS, 1);
            scores
        } else {
            let _score = obs::span("specialized score");
            obs::count(obs::COUNTER_FRAMES_SCORED, video.len());
            let scores = Arc::new(nn.score_video(&video)?);
            self.store_scores_behind(&skey, &scores);
            scores
        };
        // Only the *current* generation's network may own the live entry: a
        // caller still holding a pre-refresh network (its query started before
        // a drift swap) gets its scores computed above but must not clobber the
        // swapped-in index.
        let is_current = self
            .lock_nn_cache()
            .get(&key)
            .is_none_or(|current| current.weights_fingerprint() == nn.weights_fingerprint());
        if is_current {
            let generation = cache.get(&key).map_or(0, |e| e.generation);
            cache.insert(
                key,
                LiveIndex { nn: Arc::clone(nn), scores: Arc::clone(&scores), generation },
            );
        }
        Ok(scores)
    }

    /// Disk tier of the score-cache read-through: loads a stored matrix for
    /// `key`, charging nothing. Invalid artifacts read as a miss (the caller
    /// recomputes and the write-behind replaces the bad file).
    pub(crate) fn load_stored_scores(&self, key: &str) -> Option<Arc<ScoreMatrix>> {
        self.store_op("load score index", |store, dir| store.load_scores(dir, key))?.map(Arc::new)
    }

    /// Write-behind half of the score-cache hierarchy; a failed write degrades
    /// to in-memory-only caching rather than failing the query, recorded in
    /// the health state.
    pub(crate) fn store_scores_behind(&self, key: &str, scores: &ScoreMatrix) {
        self.store_op("store score index", |store, dir| store.store_scores(dir, key, scores));
    }

    /// The score index for `nn` over the held-out day's annotated frames (row `i`
    /// corresponds to `labeled().heldout().frames[i]`), cached like
    /// [`VideoContext::score_index`]. Algorithm 1's error estimate and the selection
    /// label-filter calibration both read from this index, so re-running a query
    /// re-checks its plan without re-scoring the held-out day.
    pub fn heldout_score_index(&self, nn: &Arc<SpecializedNN>) -> Result<Arc<ScoreMatrix>> {
        let heldout = self.labeled.heldout();
        let key = Self::score_key(self.labeled.heldout_video(), heldout.frames.len(), nn);
        let mut cache = self.heldout_cache.lock();
        if let Some(scores) = cache.get(&key) {
            obs::count(obs::COUNTER_CACHE_HITS, 1);
            return Ok(Arc::clone(scores));
        }
        if let Some(scores) = self.load_stored_scores(&key) {
            obs::count(obs::COUNTER_CACHE_HITS, 1);
            cache.insert(key, Arc::clone(&scores));
            return Ok(scores);
        }
        let _score = obs::span("held-out score");
        obs::count(obs::COUNTER_FRAMES_SCORED, heldout.frames.len() as u64);
        let scores = Arc::new(nn.score_batch(self.labeled.heldout_video(), &heldout.frames)?);
        self.store_scores_behind(&key, &scores);
        cache.insert(key, Arc::clone(&scores));
        Ok(scores)
    }

    /// The cached held-out score index for `nn`, if already built: in memory, or
    /// loaded (and promoted to memory) from the durable store. Never scores;
    /// never charges the clock — this is what lets the planner resolve
    /// Algorithm 1's rewrite decision for free on a disk-warm catalog, not just
    /// a memory-warm one.
    pub fn cached_heldout_score_index(&self, nn: &Arc<SpecializedNN>) -> Option<Arc<ScoreMatrix>> {
        let heldout = self.labeled.heldout();
        let key = Self::score_key(self.labeled.heldout_video(), heldout.frames.len(), nn);
        let mut cache = self.heldout_cache.lock();
        if let Some(scores) = cache.get(&key) {
            return Some(Arc::clone(scores));
        }
        let scores = self.load_stored_scores(&key)?;
        cache.insert(key, Arc::clone(&scores));
        Some(scores)
    }

    /// Whether the unseen video's score index for these heads is already built
    /// (in memory or persisted in the index store).
    pub fn has_cached_score_index(&self, heads: &[(ObjectClass, usize)]) -> bool {
        self.score_index_warmth(heads).is_warm()
    }

    /// The cache state of the specialized network for these heads: in memory,
    /// persisted on disk (a free load away), or cold. File presence is checked
    /// without decoding, so this is safe for free plan-time inspection.
    pub fn specialized_warmth(&self, heads: &[(ObjectClass, usize)]) -> CacheWarmth {
        let normalized = Self::normalized_heads(heads);
        if self.lock_nn_cache().contains_key(&Self::head_key(&normalized)) {
            return CacheWarmth::Memory;
        }
        // A degraded (memory-only) context will not read the store, so a
        // persisted artifact must honestly report as cold.
        match &self.store {
            Some((store, dir))
                if self.health.store_usable()
                    && store.has_network(dir, &self.nn_store_key(&normalized)) =>
            {
                CacheWarmth::Disk
            }
            _ => CacheWarmth::Cold,
        }
    }

    /// The cache state of the unseen video's score index for these heads.
    ///
    /// Score keys pin the exact network weights, so this needs the network: the
    /// memory cache is probed first, then the durable store (a disk-warm
    /// network is loaded — free of simulated cost — and promoted to memory, so
    /// a later `EXPLAIN` may truthfully report it as `warm`). Without a network
    /// anywhere there can be no score index either: `Cold`.
    pub fn score_index_warmth(&self, heads: &[(ObjectClass, usize)]) -> CacheWarmth {
        let normalized = Self::normalized_heads(heads);
        let Some(nn) = self.lookup_specialized(&normalized) else {
            return CacheWarmth::Cold;
        };
        let cache = self.lock_live_index();
        let video = self.video();
        if let Some(entry) = cache.get(&Self::head_key(&normalized)) {
            if entry.nn.weights_fingerprint() == nn.weights_fingerprint()
                && entry.scores.num_frames() as u64 == video.len()
            {
                return CacheWarmth::Memory;
            }
        }
        let key = Self::score_key(&video, video.len() as usize, &nn);
        match &self.store {
            Some((store, dir)) if self.health.store_usable() && store.has_scores(dir, &key) => {
                CacheWarmth::Disk
            }
            _ => CacheWarmth::Cold,
        }
    }
}
