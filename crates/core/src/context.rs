//! Per-video execution state: the video, its labeled set, and its caches.
//!
//! A [`VideoContext`] is one registered video of a [`Catalog`](crate::catalog::Catalog):
//! the unseen test-day video, the labeled set (training + held-out days annotated
//! offline), the detector configured for this stream, the UDF registry, and two caches
//! keyed by the specialized networks' output heads:
//!
//! * `nn_cache` — trained specialized networks. Once a network has been trained for
//!   some class set, later queries reuse it and pay only inference (the paper's
//!   "BlazeIt (no train)" scenario).
//! * `score_cache` — per-video [`ScoreMatrix`] indexes produced by the batched
//!   scoring pipeline, keyed by video identity + head set + feature configuration.
//!   The first query over a class set scores the whole video once
//!   ([`SpecializedNN::score_video`]); every later query answers from the cached
//!   index and pays *no* specialized inference at all — the paper's
//!   "BlazeIt (indexed)" scenario made concrete.
//!
//! Both caches live on the context (not on any engine or session), so every query
//! routed to this video — from any session over the owning catalog — shares them.

use crate::config::BlazeItConfig;
use crate::labeled::LabeledSet;
use crate::{BlazeItError, Result};
use blazeit_detect::{SimClock, SimulatedDetector};
use blazeit_frameql::{builtin_udfs, UdfRegistry};
use blazeit_nn::specialized::{SpecializedConfig, SpecializedHead, SpecializedNN};
use blazeit_nn::ScoreMatrix;
use blazeit_videostore::{ObjectClass, Video};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One registered video and everything cached for it.
pub struct VideoContext {
    video: Video,
    labeled: Arc<LabeledSet>,
    config: BlazeItConfig,
    clock: Arc<SimClock>,
    detector: SimulatedDetector,
    udfs: UdfRegistry,
    nn_cache: Mutex<HashMap<String, Arc<SpecializedNN>>>,
    score_cache: Mutex<HashMap<String, Arc<ScoreMatrix>>>,
}

impl std::fmt::Debug for VideoContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VideoContext")
            .field("video", &self.video.name())
            .field("frames", &self.video.len())
            .field("detection_method", &self.config.detection_method)
            .finish()
    }
}

impl VideoContext {
    /// Creates a context over `video` (the unseen test data) with a pre-built labeled
    /// set, charging all expensive work to `clock` (usually the owning catalog's).
    pub fn new(
        video: Video,
        labeled: Arc<LabeledSet>,
        config: BlazeItConfig,
        clock: Arc<SimClock>,
    ) -> VideoContext {
        let detector = SimulatedDetector::new(
            config.detection_method,
            config.detection_threshold,
            Arc::clone(&clock),
        );
        VideoContext {
            video,
            labeled,
            config,
            clock,
            detector,
            udfs: builtin_udfs(),
            nn_cache: Mutex::new(HashMap::new()),
            score_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The unseen (test) video queries run over.
    pub fn video(&self) -> &Video {
        &self.video
    }

    /// The labeled set.
    pub fn labeled(&self) -> &Arc<LabeledSet> {
        &self.labeled
    }

    /// The context configuration.
    pub fn config(&self) -> &BlazeItConfig {
        &self.config
    }

    /// The simulated clock all costs are charged to.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The configured object detector (charges the shared clock on every call).
    pub fn detector(&self) -> &SimulatedDetector {
        &self.detector
    }

    /// The UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Registers (or replaces) a UDF available to queries on this video.
    pub fn register_udf(
        &mut self,
        name: &str,
        frame_liftable: bool,
        func: impl Fn(
                &blazeit_videostore::Frame,
                &blazeit_videostore::BoundingBox,
            ) -> blazeit_frameql::Value
            + Send
            + Sync
            + 'static,
    ) {
        self.udfs.register(name, frame_liftable, func);
    }

    /// The cache key for a set of `(class, max_count)` heads (order-insensitive).
    fn head_key(heads: &[(ObjectClass, usize)]) -> String {
        let mut sorted: Vec<(ObjectClass, usize)> = heads.to_vec();
        sorted.sort_by_key(|(c, _)| c.index());
        sorted.iter().map(|(c, m)| format!("{}:{}", c.name(), m)).collect::<Vec<_>>().join("|")
    }

    /// The cache key for a score index: full video identity (name, day, seed,
    /// length, frames scored) + the network's own architecture (heads, feature
    /// config, hidden widths, init seed).
    ///
    /// The day/seed components distinguish the test-day index from the held-out
    /// index even when both days are the same length and fully annotated; the
    /// architecture components come from the *network being scored* (not the
    /// context config), so an externally trained network with the same heads but
    /// different features cannot collide with a context-trained one.
    fn score_key(video: &Video, frames_scored: usize, config: &SpecializedConfig) -> String {
        let heads: Vec<(ObjectClass, usize)> =
            config.heads.iter().map(|h| (h.class, h.max_count)).collect();
        format!(
            "{}#day{}#vseed{}#{}#{}#{:?}#{:?}#nnseed{}#{}",
            video.name(),
            video.config().day,
            video.config().seed,
            video.len(),
            frames_scored,
            config.features,
            config.hidden,
            config.seed,
            Self::head_key(&heads),
        )
    }

    /// The specialized-network configuration this context trains for a sorted
    /// head set (shared by [`VideoContext::specialized_for`] and the cache-key
    /// derivations so they can never disagree).
    fn context_spec_config(&self, sorted: &[(ObjectClass, usize)]) -> SpecializedConfig {
        let spec_heads: Vec<SpecializedHead> = sorted
            .iter()
            .map(|&(class, max_count)| SpecializedHead { class, max_count: max_count.max(1) })
            .collect();
        let mut spec_config = SpecializedConfig::for_heads(spec_heads);
        spec_config.features = self.config.features;
        spec_config.hidden = self.config.specialized_hidden.clone();
        spec_config.train = self.config.train;
        spec_config.cost = self.config.cost;
        spec_config.seed = self.config.sampling_seed ^ 0x5EC1_A112;
        spec_config
    }

    /// Returns (training if necessary) a specialized network with one counting head per
    /// requested `(class, max_count)` pair.
    ///
    /// Training is charged to the shared clock; cache hits are free (this is the
    /// "indexed" / "no train" scenario of the paper).
    pub fn specialized_for(&self, heads: &[(ObjectClass, usize)]) -> Result<Arc<SpecializedNN>> {
        if heads.is_empty() {
            return Err(BlazeItError::Internal(
                "specialized_for requires at least one head".into(),
            ));
        }
        let mut sorted: Vec<(ObjectClass, usize)> = heads.to_vec();
        sorted.sort_by_key(|(c, _)| c.index());
        let key = Self::head_key(heads);

        if let Some(nn) = self.nn_cache.lock().get(&key) {
            return Ok(Arc::clone(nn));
        }

        let spec_config = self.context_spec_config(&sorted);
        let train_day = self.labeled.train();
        let (nn, _report) = SpecializedNN::train(
            spec_config,
            self.labeled.train_video(),
            &train_day.frames,
            &train_day.counts,
            Arc::clone(&self.clock),
        )?;
        let nn = Arc::new(nn);
        self.nn_cache.lock().insert(key, Arc::clone(&nn));
        Ok(nn)
    }

    /// The default counting head size for `class`, chosen by the paper's rule: the
    /// highest count appearing in at least `count_class_min_fraction` of the labeled
    /// frames, and never below `at_least`.
    pub fn default_max_count(&self, class: ObjectClass, at_least: usize) -> usize {
        let counts = self.labeled.train().class_counts(class);
        let head =
            SpecializedHead::from_counts(class, counts, self.config.count_class_min_fraction);
        head.max_count.max(at_least).max(1)
    }

    /// Whether a specialized network for these heads is already trained and cached.
    pub fn has_cached_specialized(&self, heads: &[(ObjectClass, usize)]) -> bool {
        self.nn_cache.lock().contains_key(&Self::head_key(heads))
    }

    /// The cached specialized network for these heads, if one exists (never trains;
    /// never charges the clock — this is what free plan-time inspection uses).
    pub fn cached_specialized(&self, heads: &[(ObjectClass, usize)]) -> Option<Arc<SpecializedNN>> {
        self.nn_cache.lock().get(&Self::head_key(heads)).map(Arc::clone)
    }

    /// The per-video score index for `nn` over the unseen (test) video: every frame
    /// scored by the batched pipeline, cached so repeated queries over the same
    /// class set pay specialized inference only once (the paper's
    /// "BlazeIt (indexed)" scenario).
    ///
    /// The first call charges the full-video inference cost to the shared clock;
    /// later calls are free.
    pub fn score_index(&self, nn: &Arc<SpecializedNN>) -> Result<Arc<ScoreMatrix>> {
        let key = Self::score_key(&self.video, self.video.len() as usize, nn.config());
        // The lock is held across the build so two concurrent first queries
        // cannot both score the video (which would double-charge the clock).
        let mut cache = self.score_cache.lock();
        if let Some(scores) = cache.get(&key) {
            return Ok(Arc::clone(scores));
        }
        let scores = Arc::new(nn.score_video(&self.video)?);
        cache.insert(key, Arc::clone(&scores));
        Ok(scores)
    }

    /// The score index for `nn` over the held-out day's annotated frames (row `i`
    /// corresponds to `labeled().heldout().frames[i]`), cached like
    /// [`VideoContext::score_index`]. Algorithm 1's error estimate and the selection
    /// label-filter calibration both read from this index, so re-running a query
    /// re-checks its plan without re-scoring the held-out day.
    pub fn heldout_score_index(&self, nn: &Arc<SpecializedNN>) -> Result<Arc<ScoreMatrix>> {
        let heldout = self.labeled.heldout();
        let key = Self::score_key(self.labeled.heldout_video(), heldout.frames.len(), nn.config());
        let mut cache = self.score_cache.lock();
        if let Some(scores) = cache.get(&key) {
            return Ok(Arc::clone(scores));
        }
        let scores = Arc::new(nn.score_batch(self.labeled.heldout_video(), &heldout.frames)?);
        cache.insert(key, Arc::clone(&scores));
        Ok(scores)
    }

    /// The cached held-out score index for `nn`, if already built (never scores;
    /// never charges the clock).
    pub fn cached_heldout_score_index(&self, nn: &Arc<SpecializedNN>) -> Option<Arc<ScoreMatrix>> {
        let heldout = self.labeled.heldout();
        let key = Self::score_key(self.labeled.heldout_video(), heldout.frames.len(), nn.config());
        self.score_cache.lock().get(&key).map(Arc::clone)
    }

    /// Whether the unseen video's score index for these heads is already built.
    pub fn has_cached_score_index(&self, heads: &[(ObjectClass, usize)]) -> bool {
        let mut sorted: Vec<(ObjectClass, usize)> = heads.to_vec();
        sorted.sort_by_key(|(c, _)| c.index());
        let config = self.context_spec_config(&sorted);
        let key = Self::score_key(&self.video, self.video.len() as usize, &config);
        self.score_cache.lock().contains_key(&key)
    }
}
