//! The durable on-disk index store: score matrices and trained specialized
//! networks that survive the [`Catalog`](crate::catalog::Catalog).
//!
//! The paper's "BlazeIt (indexed)" scenario assumes the specialized-NN score index
//! already exists when a query arrives — which only makes sense if indexes outlive
//! the process that built them (Focus builds its whole low-latency story on an
//! ingest-time index consulted at query time; NoScope's amortization argument
//! needs the cascade's work to be reusable). An [`IndexStore`] makes the catalog's
//! per-video caches durable: [`Catalog::with_index_store`](crate::catalog::Catalog::with_index_store)
//! wires every registered [`VideoContext`](crate::context::VideoContext) into a
//! read-through / write-behind hierarchy — memory cache → disk store → train/score
//! — so a fresh catalog over a populated store answers repeat queries with **zero**
//! specialized inference or training charged to the simulated clock.
//!
//! ## Directory layout
//!
//! One directory per registered video (its normalized name), two artifact classes
//! inside, filenames derived from the FNV-1a hash of fully-identifying keys (the
//! full key string is stored — and verified — inside each file, so a hash
//! collision or renamed file is rejected, never silently served):
//!
//! ```text
//! <root>/
//!   <video-name>/
//!     nn/<fnv1a(key)>.bzn       trained networks; key = training-data identity
//!                               (training video, labeled-set size, detector) +
//!                               the full specialized configuration
//!     scores/<fnv1a(key)>.bzs   score matrices; key = scored-video identity +
//!                               configuration + a fingerprint of the network
//!                               weights that produced them
//!     labeled/<fnv1a(key)>.bzl  labeled-set annotations (the offline detector
//!                               pass over the train + held-out days); key =
//!                               both videos' identity + detector + strides
//!   manifest.tsv                LRU bookkeeping (budgeted stores only)
//! ```
//!
//! ## Size budgeting
//!
//! [`IndexStore::open_with_budget`] caps the total artifact bytes: every store
//! and load bumps the artifact's use sequence in `manifest.tsv` (recency is
//! tracked explicitly, never inferred from mtimes), and writes evict the
//! least-recently-used artifacts until the total fits. An artifact bigger than
//! the entire budget is rejected up front with the typed
//! [`StoreError::BudgetExceeded`] — an un-evictable overflow — and nothing is
//! written; the catalog's write-behind treats that like any other store
//! failure and degrades to in-memory caching.
//!
//! Because the keys pin everything an artifact depends on, catalogs opened over
//! one store path with *different* `BlazeItConfig`s plan cold and recompute
//! instead of serving each other's artifacts.
//!
//! Files use the versioned, checksummed envelope of [`blazeit_nn::persist`];
//! truncated, corrupted, or version-bumped files fail to load with a typed
//! [`StoreError`] (never a panic), and the context's read-through path falls back
//! to recomputing — then overwrites the bad file with a fresh artifact.

use crate::fault;
use crate::labeled::AnnotatedDay;
use crate::obs;
use crate::sync::Mutex;
use crate::BlazeItError;
use blazeit_detect::{CountVector, Detection, SimClock};
use blazeit_nn::persist::{self, PersistError};
use blazeit_nn::specialized::SpecializedNN;
use blazeit_nn::ScoreMatrix;
use blazeit_videostore::{BoundingBox, ObjectClass};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A typed index-store failure: I/O around an artifact file, or the artifact
/// itself failing to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The store directory or an artifact file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A transient, retryable I/O failure (`WouldBlock`-shaped: the resource is
    /// momentarily busy or unavailable). Eligible for retry under the
    /// context's [`RetryPolicy`](crate::fault::RetryPolicy); once retries are
    /// exhausted it counts toward store degradation like [`StoreError::Io`].
    Transient {
        /// The path involved.
        path: PathBuf,
        /// The underlying condition, rendered.
        message: String,
    },
    /// An artifact file exists but is invalid: truncated, corrupted,
    /// version-mismatched, or stored under a different identity key.
    Invalid {
        /// The artifact file.
        path: PathBuf,
        /// The typed decoding failure.
        source: PersistError,
    },
    /// Storing the artifact would exceed the store's size budget even after
    /// evicting every other artifact (the artifact alone is bigger than the
    /// budget): an un-evictable overflow.
    BudgetExceeded {
        /// The artifact that could not be stored.
        path: PathBuf,
        /// The artifact's size in bytes.
        needed: u64,
        /// The store's configured budget in bytes.
        budget: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "index store I/O error at {}: {message}", path.display())
            }
            StoreError::Transient { path, message } => {
                write!(f, "transient index store error at {}: {message}", path.display())
            }
            StoreError::Invalid { path, source } => {
                write!(f, "invalid index artifact {}: {source}", path.display())
            }
            StoreError::BudgetExceeded { path, needed, budget } => {
                write!(
                    f,
                    "index artifact {} needs {needed} bytes but the store budget is \
                     {budget} bytes (un-evictable overflow)",
                    path.display()
                )
            }
        }
    }
}

impl StoreError {
    /// Whether this failure is transient (momentary, worth retrying with
    /// backoff) as opposed to a hard error or a corrupt artifact.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Transient { .. })
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for BlazeItError {
    fn from(e: StoreError) -> Self {
        BlazeItError::Store(e)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io { path: path.to_path_buf(), message: e.to_string() }
}

/// Convenience result alias for store operations.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Least-recently-used bookkeeping for a budgeted store: artifact sizes and a
/// monotone use sequence per relative path, persisted as a small manifest file
/// (`manifest.tsv` at the store root) so recency survives reopen — mtimes are
/// not trusted (they are coarse, and backup/copy tools rewrite them).
#[derive(Debug, Default)]
struct Manifest {
    next_seq: u64,
    entries: HashMap<String, (u64, u64)>, // rel path -> (bytes, last-used seq)
}

impl Manifest {
    const FILE: &'static str = "manifest.tsv";
    const HEADER: &'static str = "blazeit-index-manifest v1";

    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|&(bytes, _)| bytes).sum()
    }

    /// Parses a manifest file; `None` when missing or malformed (the caller
    /// rebuilds from a directory scan).
    fn parse(text: &str) -> Option<Manifest> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let next_seq: u64 = header.strip_prefix(Self::HEADER)?.trim().parse().ok()?;
        let mut entries = HashMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let seq: u64 = parts.next()?.parse().ok()?;
            let bytes: u64 = parts.next()?.parse().ok()?;
            let rel = parts.next()?.to_string();
            entries.insert(rel, (bytes, seq));
        }
        Some(Manifest { next_seq, entries })
    }

    fn render(&self) -> String {
        let mut rows: Vec<(&String, &(u64, u64))> = self.entries.iter().collect();
        rows.sort_by_key(|(rel, _)| rel.as_str());
        let mut out = format!("{} {}\n", Self::HEADER, self.next_seq);
        for (rel, (bytes, seq)) in rows {
            out.push_str(&format!("{seq}\t{bytes}\t{rel}\n"));
        }
        out
    }
}

/// A durable store of score indexes, trained specialized networks, and
/// labeled-set annotations, shared by every video of a catalog.
#[derive(Debug)]
pub struct IndexStore {
    root: PathBuf,
    /// Maximum total artifact bytes, enforced by LRU eviction; `None` =
    /// unbounded (no manifest maintained).
    budget: Option<u64>,
    manifest: Mutex<Manifest>,
}

impl IndexStore {
    /// Opens (creating if necessary) an index store rooted at `path`, with no
    /// size budget.
    // blazeit-lint: allow(fault-coverage) -- bootstrap path: create_dir_all runs once
    // before any fault plan is installed; a failure surfaces as StoreError::Io and
    // aborts setup rather than degrading a live store.
    pub fn open(path: impl AsRef<Path>) -> StoreResult<IndexStore> {
        let root = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(IndexStore { root, budget: None, manifest: Mutex::new(Manifest::default()) })
    }

    /// Opens a store whose total artifact bytes are kept at or below
    /// `max_bytes` by least-recently-used eviction.
    ///
    /// Recency is tracked in a small on-disk manifest (every store and load
    /// bumps the artifact's use sequence), **not** in filesystem mtimes. An
    /// existing store opened with a budget is reconciled first: untracked
    /// artifact files are adopted (as least recently used), stale manifest
    /// rows are dropped, and the store is evicted down to the budget
    /// immediately.
    pub fn open_with_budget(path: impl AsRef<Path>, max_bytes: u64) -> StoreResult<IndexStore> {
        let root = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        let mut manifest = std::fs::read_to_string(root.join(Manifest::FILE))
            .ok()
            .and_then(|text| Manifest::parse(&text))
            .unwrap_or_default();
        Self::reconcile(&root, &mut manifest);
        let store = IndexStore { root, budget: Some(max_bytes), manifest: Mutex::new(manifest) };
        {
            let mut manifest = store.manifest.lock();
            store.evict_to_budget(&mut manifest, None)?;
            store.persist_manifest(&manifest)?;
        }
        Ok(store)
    }

    /// Syncs a manifest with the artifact files actually on disk: drops rows
    /// whose file is gone, adopts files the manifest has never seen (with the
    /// lowest recency, so unknown history evicts first).
    // blazeit-lint: allow(fault-coverage) -- infallible by design: reconciliation
    // tolerates every fs error (unreadable dirs/entries are skipped), so there is
    // no error path an injected fault could surface through.
    fn reconcile(root: &Path, manifest: &mut Manifest) {
        let mut on_disk: Vec<(String, u64)> = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if matches!(
                    path.extension().and_then(|e| e.to_str()),
                    Some("bzn" | "bzs" | "bzl")
                ) {
                    if let (Ok(rel), Ok(meta)) = (path.strip_prefix(root), entry.metadata()) {
                        on_disk.push((rel.to_string_lossy().into_owned(), meta.len()));
                    }
                }
            }
        }
        let live: std::collections::HashSet<&str> =
            on_disk.iter().map(|(rel, _)| rel.as_str()).collect();
        manifest.entries.retain(|rel, _| live.contains(rel.as_str()));
        on_disk.sort();
        for (rel, bytes) in on_disk {
            manifest.entries.entry(rel).or_insert((bytes, 0));
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured size budget in bytes, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Total artifact bytes currently tracked (only meaningful for budgeted
    /// stores, whose manifest is kept in sync).
    pub fn tracked_bytes(&self) -> u64 {
        self.manifest.lock().total_bytes()
    }

    fn rel(&self, path: &Path) -> String {
        path.strip_prefix(&self.root)
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|_| path.to_string_lossy().into_owned())
    }

    fn persist_manifest(&self, manifest: &Manifest) -> StoreResult<()> {
        write_atomically(&self.root.join(Manifest::FILE), manifest.render().as_bytes())
    }

    /// Evicts least-recently-used artifacts (never `keep`) until the tracked
    /// total fits the budget.
    fn evict_to_budget(&self, manifest: &mut Manifest, keep: Option<&str>) -> StoreResult<()> {
        let Some(budget) = self.budget else { return Ok(()) };
        while manifest.total_bytes() > budget {
            let victim = manifest
                .entries
                .iter()
                .filter(|(rel, _)| keep != Some(rel.as_str()))
                .min_by_key(|(rel, &(_, seq))| (seq, (*rel).clone()))
                .map(|(rel, _)| rel.clone());
            let Some(victim) = victim else {
                // Nothing evictable is left; the survivor alone exceeds the
                // budget. `store_artifact` pre-checks incoming sizes, so this
                // can only be reached by shrinking the budget of an existing
                // store below its largest pinned artifact.
                let path = self.root.join(keep.unwrap_or_default());
                return Err(StoreError::BudgetExceeded {
                    needed: manifest.total_bytes(),
                    budget,
                    path,
                });
            };
            let path = self.root.join(&victim);
            if let Some(injected) = fault::inject(fault::FaultSite::StoreRemove) {
                if let Some(error) = injected_io_error(&path, injected) {
                    return Err(error);
                }
            }
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&path, e)),
            }
            manifest.entries.remove(&victim);
            obs::metrics().store_evictions.inc();
        }
        Ok(())
    }

    /// Records a freshly written artifact in the manifest and evicts older
    /// artifacts as needed (no-op for unbudgeted stores).
    fn record_write(&self, path: &Path, bytes: u64) -> StoreResult<()> {
        if self.budget.is_none() {
            return Ok(());
        }
        let rel = self.rel(path);
        let mut manifest = self.manifest.lock();
        let seq = manifest.next_seq;
        manifest.next_seq += 1;
        manifest.entries.insert(rel.clone(), (bytes, seq));
        self.evict_to_budget(&mut manifest, Some(&rel))?;
        self.persist_manifest(&manifest)
    }

    /// Bumps an artifact's use sequence (loads count as uses for LRU).
    fn record_use(&self, path: &Path) {
        if self.budget.is_none() {
            return;
        }
        let rel = self.rel(path);
        let mut manifest = self.manifest.lock();
        let seq = manifest.next_seq;
        if let Some(entry) = manifest.entries.get_mut(&rel) {
            entry.1 = seq;
            manifest.next_seq += 1;
            let _ = self.persist_manifest(&manifest);
        }
    }

    /// Drops an artifact from the manifest (after its file was removed).
    fn record_remove(&self, path: &Path) {
        if self.budget.is_none() {
            return;
        }
        let rel = self.rel(path);
        let mut manifest = self.manifest.lock();
        if manifest.entries.remove(&rel).is_some() {
            let _ = self.persist_manifest(&manifest);
        }
    }

    /// Writes an artifact through the budget gate: an artifact bigger than the
    /// whole budget is rejected up front as un-evictable overflow (nothing is
    /// written), anything else is written atomically and older artifacts are
    /// evicted LRU-first to make room.
    fn store_artifact(&self, path: &Path, bytes: &[u8]) -> StoreResult<()> {
        if let Some(budget) = self.budget {
            if bytes.len() as u64 > budget {
                return Err(StoreError::BudgetExceeded {
                    path: path.to_path_buf(),
                    needed: bytes.len() as u64,
                    budget,
                });
            }
        }
        write_atomically(path, bytes)?;
        obs::metrics().store_writes.inc();
        self.record_write(path, bytes.len() as u64)
    }

    /// This video's directory inside the store: the (normalized) name when it is
    /// already a safe single path component, otherwise a sanitized form with a
    /// disambiguating hash. Video names are caller-controlled strings, so they
    /// must never be able to traverse outside the store root (`"../shared"`) or
    /// nest into another video's namespace (`"a/b"`).
    fn video_dir(&self, video: &str) -> PathBuf {
        let cleaned: String = video
            .chars()
            .map(
                |c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' },
            )
            .collect();
        // A changed, empty, or dot-leading name (".", "..", hidden files) gets
        // the raw name's hash appended so distinct raw names stay distinct.
        let dir = if cleaned != video || cleaned.is_empty() || cleaned.starts_with('.') {
            format!(
                "{}-{:08x}",
                cleaned.trim_start_matches('.'),
                persist::fnv1a(video.as_bytes()) as u32
            )
        } else {
            cleaned
        };
        self.root.join(dir)
    }

    /// The artifact path for a trained network stored under `key` for `video`.
    /// Exposed so tests and tooling can inspect (or corrupt) specific files.
    pub fn network_path(&self, video: &str, key: &str) -> PathBuf {
        self.video_dir(video)
            .join("nn")
            .join(format!("{:016x}.bzn", persist::fnv1a(key.as_bytes())))
    }

    /// The artifact path for a score matrix stored under `key` for `video`.
    pub fn scores_path(&self, video: &str, key: &str) -> PathBuf {
        self.video_dir(video)
            .join("scores")
            .join(format!("{:016x}.bzs", persist::fnv1a(key.as_bytes())))
    }

    /// The artifact path for labeled-set annotations stored under `key` for
    /// `video`.
    pub fn labeled_path(&self, video: &str, key: &str) -> PathBuf {
        self.video_dir(video)
            .join("labeled")
            .join(format!("{:016x}.bzl", persist::fnv1a(key.as_bytes())))
    }

    /// Whether a trained network is stored under `key` for `video` (a cheap file
    /// presence check: used by plan warmth, so it must not decode anything).
    pub fn has_network(&self, video: &str, key: &str) -> bool {
        self.network_path(video, key).is_file()
    }

    /// Whether a score matrix is stored under `key` for `video`.
    pub fn has_scores(&self, video: &str, key: &str) -> bool {
        self.scores_path(video, key).is_file()
    }

    /// Loads the trained network stored under `key` for `video`, binding it to
    /// `clock`; `Ok(None)` when no artifact exists, a typed [`StoreError`] when
    /// one exists but cannot be decoded. Charges nothing to the simulated clock.
    pub fn load_network(
        &self,
        video: &str,
        key: &str,
        clock: &Arc<SimClock>,
    ) -> StoreResult<Option<SpecializedNN>> {
        let path = self.network_path(video, key);
        let Some(bytes) = read_if_exists(&path)? else { return Ok(None) };
        self.record_use(&path);
        obs::metrics().store_reads.inc();
        persist::decode_specialized_nn(&bytes, key, Arc::clone(clock))
            .map(Some)
            .map_err(|source| StoreError::Invalid { path, source })
    }

    /// Loads the score matrix stored under `key` for `video` (`Ok(None)` when
    /// absent, typed error when invalid). The result is bit-identical to the
    /// matrix that was stored. Charges nothing to the simulated clock.
    pub fn load_scores(&self, video: &str, key: &str) -> StoreResult<Option<ScoreMatrix>> {
        let path = self.scores_path(video, key);
        let Some(bytes) = read_if_exists(&path)? else { return Ok(None) };
        self.record_use(&path);
        obs::metrics().store_reads.inc();
        persist::decode_score_matrix(&bytes, key)
            .map(Some)
            .map_err(|source| StoreError::Invalid { path, source })
    }

    /// Stores (or replaces) a trained network under `key` for `video`.
    pub fn store_network(&self, video: &str, key: &str, nn: &SpecializedNN) -> StoreResult<()> {
        self.store_artifact(
            &self.network_path(video, key),
            &persist::encode_specialized_nn(nn, key),
        )
    }

    /// Stores (or replaces) a score matrix under `key` for `video`.
    pub fn store_scores(&self, video: &str, key: &str, scores: &ScoreMatrix) -> StoreResult<()> {
        self.store_artifact(
            &self.scores_path(video, key),
            &persist::encode_score_matrix(scores, key),
        )
    }

    /// Removes the score matrix stored under `key` for `video`, if present
    /// (streaming ingestion retires the superseded shorter artifact after
    /// writing the grown one, so disk tracks the stream).
    pub fn remove_scores(&self, video: &str, key: &str) -> StoreResult<()> {
        let path = self.scores_path(video, key);
        if let Some(injected) = fault::inject(fault::FaultSite::StoreRemove) {
            if let Some(error) = injected_io_error(&path, injected) {
                return Err(error);
            }
        }
        match std::fs::remove_file(&path) {
            Ok(()) => {
                self.record_remove(&path);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, e)),
        }
    }

    /// Stores labeled-set annotations (the training and held-out
    /// [`AnnotatedDay`]s) under `key` for `video`, so a fresh catalog over
    /// this store can skip the offline annotation pass entirely.
    pub fn store_labeled(
        &self,
        video: &str,
        key: &str,
        train: &AnnotatedDay,
        heldout: &AnnotatedDay,
    ) -> StoreResult<()> {
        self.store_artifact(&self.labeled_path(video, key), &encode_labeled(key, train, heldout))
    }

    /// Loads the labeled-set annotations stored under `key` for `video`
    /// (`Ok(None)` when absent, typed error when invalid). Per-frame counts
    /// are re-derived from the stored detections, so they can never disagree.
    pub fn load_labeled(
        &self,
        video: &str,
        key: &str,
    ) -> StoreResult<Option<(AnnotatedDay, AnnotatedDay)>> {
        let path = self.labeled_path(video, key);
        let Some(bytes) = read_if_exists(&path)? else { return Ok(None) };
        self.record_use(&path);
        obs::metrics().store_reads.inc();
        decode_labeled(&bytes, key).map(Some).map_err(|source| StoreError::Invalid { path, source })
    }

    /// Whether labeled-set annotations are stored under `key` for `video`.
    pub fn has_labeled(&self, video: &str, key: &str) -> bool {
        self.labeled_path(video, key).is_file()
    }
}

// ---------------------------------------------------------------------------------
// Labeled-set annotation codec (envelope shared with `blazeit_nn::persist`).
// ---------------------------------------------------------------------------------

fn encode_day(w: &mut persist::Writer, day: &AnnotatedDay) {
    w.u64s(&day.frames);
    w.usize(day.detections.len());
    for dets in &day.detections {
        w.usize(dets.len());
        for d in dets {
            w.u8(d.class.index() as u8);
            w.f32(d.bbox.xmin);
            w.f32(d.bbox.ymin);
            w.f32(d.bbox.xmax);
            w.f32(d.bbox.ymax);
            w.f32(d.confidence);
            w.f32s(&d.features);
        }
    }
}

fn decode_day(r: &mut persist::Reader<'_>) -> std::result::Result<AnnotatedDay, PersistError> {
    let frames = r.u64s("annotated frames")?;
    let num = r.usize("detection list count")?;
    if num != frames.len() {
        return Err(PersistError::Corrupt(format!(
            "{} detection lists for {} annotated frames",
            num,
            frames.len()
        )));
    }
    let mut detections = Vec::with_capacity(num);
    let mut counts = Vec::with_capacity(num);
    for _ in 0..num {
        let n = r.usize("detections per frame")?;
        let mut dets = Vec::with_capacity(n);
        for _ in 0..n {
            let class_index = r.u8("detection class")?;
            let class = ObjectClass::ALL.get(class_index as usize).copied().ok_or_else(|| {
                PersistError::Corrupt(format!("unknown object class index {class_index}"))
            })?;
            let bbox = BoundingBox {
                xmin: r.f32("bbox xmin")?,
                ymin: r.f32("bbox ymin")?,
                xmax: r.f32("bbox xmax")?,
                ymax: r.f32("bbox ymax")?,
            };
            let confidence = r.f32("detection confidence")?;
            let features = r.f32s("detection features")?;
            dets.push(Detection { class, bbox, confidence, features });
        }
        counts.push(CountVector::from_detections(&dets));
        detections.push(dets);
    }
    Ok(AnnotatedDay { frames, detections, counts })
}

/// Serializes both annotated days under their cache-identity `key`.
fn encode_labeled(key: &str, train: &AnnotatedDay, heldout: &AnnotatedDay) -> Vec<u8> {
    let mut w = persist::Writer::default();
    w.str(key);
    encode_day(&mut w, train);
    encode_day(&mut w, heldout);
    persist::seal(persist::KIND_LABELED_SET, w.payload())
}

/// Decodes both annotated days, verifying the envelope and key.
fn decode_labeled(
    bytes: &[u8],
    expected_key: &str,
) -> std::result::Result<(AnnotatedDay, AnnotatedDay), PersistError> {
    let payload = persist::open(persist::KIND_LABELED_SET, bytes)?;
    let mut r = persist::Reader::new(payload);
    persist::check_key(&mut r, expected_key)?;
    let train = decode_day(&mut r)?;
    let heldout = decode_day(&mut r)?;
    r.finish()?;
    Ok((train, heldout))
}

/// Maps an injected fault at an I/O failpoint to the store error it simulates
/// (`None` for fault kinds the call site handles specially, e.g. torn writes).
fn injected_io_error(path: &Path, injected: fault::InjectedFault) -> Option<StoreError> {
    match injected {
        fault::InjectedFault::TransientIo => Some(StoreError::Transient {
            path: path.to_path_buf(),
            message: "injected fault: resource temporarily unavailable (would block)".into(),
        }),
        fault::InjectedFault::Io => Some(StoreError::Io {
            path: path.to_path_buf(),
            message: "injected fault: I/O error".into(),
        }),
        _ => None,
    }
}

fn read_if_exists(path: &Path) -> StoreResult<Option<Vec<u8>>> {
    if let Some(injected) = fault::inject(fault::FaultSite::StoreRead) {
        if let Some(error) = injected_io_error(path, injected) {
            return Err(error);
        }
    }
    match std::fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err(path, e)),
    }
}

/// Writes via a uniquely-named temp file + rename so a crash mid-write leaves
/// either the old artifact or none — never a torn file that would read as
/// corrupt forever. The temp name carries the process id and a per-process
/// counter, so concurrent writers of the same artifact (two catalogs sharing
/// one store path) cannot interleave on one temp file; last rename wins with a
/// complete file either way.
fn write_atomically(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    use crate::sync::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

    let dir = path.parent().ok_or_else(|| StoreError::Io {
        path: path.to_path_buf(),
        message: "artifact path has no parent directory".into(),
    })?;
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    match fault::inject(fault::FaultSite::StoreWrite) {
        Some(fault::InjectedFault::TornWrite) => {
            // Simulate a filesystem that lied about durability: leave a
            // truncated artifact at the final path while *reporting success*.
            // The checksummed persist envelope catches this on the next read
            // (`StoreError::Invalid`) and the read-through path heals it by
            // recomputing and overwriting.
            // blazeit-lint: allow(panic-site::index) -- bytes.len() / 2 <= bytes.len(), so the torn
            // prefix is always in range
            let torn = &bytes[..bytes.len() / 2];
            std::fs::write(path, torn).map_err(|e| io_err(path, e))?;
            return Ok(());
        }
        Some(injected) => {
            if let Some(error) = injected_io_error(path, injected) {
                return Err(error);
            }
        }
        None => {}
    }
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}
