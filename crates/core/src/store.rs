//! The durable on-disk index store: score matrices and trained specialized
//! networks that survive the [`Catalog`](crate::catalog::Catalog).
//!
//! The paper's "BlazeIt (indexed)" scenario assumes the specialized-NN score index
//! already exists when a query arrives — which only makes sense if indexes outlive
//! the process that built them (Focus builds its whole low-latency story on an
//! ingest-time index consulted at query time; NoScope's amortization argument
//! needs the cascade's work to be reusable). An [`IndexStore`] makes the catalog's
//! per-video caches durable: [`Catalog::with_index_store`](crate::catalog::Catalog::with_index_store)
//! wires every registered [`VideoContext`](crate::context::VideoContext) into a
//! read-through / write-behind hierarchy — memory cache → disk store → train/score
//! — so a fresh catalog over a populated store answers repeat queries with **zero**
//! specialized inference or training charged to the simulated clock.
//!
//! ## Directory layout
//!
//! One directory per registered video (its normalized name), two artifact classes
//! inside, filenames derived from the FNV-1a hash of fully-identifying keys (the
//! full key string is stored — and verified — inside each file, so a hash
//! collision or renamed file is rejected, never silently served):
//!
//! ```text
//! <root>/
//!   <video-name>/
//!     nn/<fnv1a(key)>.bzn       trained networks; key = training-data identity
//!                               (training video, labeled-set size, detector) +
//!                               the full specialized configuration
//!     scores/<fnv1a(key)>.bzs   score matrices; key = scored-video identity +
//!                               configuration + a fingerprint of the network
//!                               weights that produced them
//! ```
//!
//! Because the keys pin everything an artifact depends on, catalogs opened over
//! one store path with *different* `BlazeItConfig`s plan cold and recompute
//! instead of serving each other's artifacts.
//!
//! Files use the versioned, checksummed envelope of [`blazeit_nn::persist`];
//! truncated, corrupted, or version-bumped files fail to load with a typed
//! [`StoreError`] (never a panic), and the context's read-through path falls back
//! to recomputing — then overwrites the bad file with a fresh artifact.

use crate::BlazeItError;
use blazeit_detect::SimClock;
use blazeit_nn::persist::{self, PersistError};
use blazeit_nn::specialized::SpecializedNN;
use blazeit_nn::ScoreMatrix;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A typed index-store failure: I/O around an artifact file, or the artifact
/// itself failing to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The store directory or an artifact file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// An artifact file exists but is invalid: truncated, corrupted,
    /// version-mismatched, or stored under a different identity key.
    Invalid {
        /// The artifact file.
        path: PathBuf,
        /// The typed decoding failure.
        source: PersistError,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "index store I/O error at {}: {message}", path.display())
            }
            StoreError::Invalid { path, source } => {
                write!(f, "invalid index artifact {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for BlazeItError {
    fn from(e: StoreError) -> Self {
        BlazeItError::Store(e)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io { path: path.to_path_buf(), message: e.to_string() }
}

/// Convenience result alias for store operations.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// A durable store of score indexes and trained specialized networks, shared by
/// every video of a catalog.
#[derive(Debug)]
pub struct IndexStore {
    root: PathBuf,
}

impl IndexStore {
    /// Opens (creating if necessary) an index store rooted at `path`.
    pub fn open(path: impl AsRef<Path>) -> StoreResult<IndexStore> {
        let root = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(IndexStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This video's directory inside the store: the (normalized) name when it is
    /// already a safe single path component, otherwise a sanitized form with a
    /// disambiguating hash. Video names are caller-controlled strings, so they
    /// must never be able to traverse outside the store root (`"../shared"`) or
    /// nest into another video's namespace (`"a/b"`).
    fn video_dir(&self, video: &str) -> PathBuf {
        let cleaned: String = video
            .chars()
            .map(
                |c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' },
            )
            .collect();
        // A changed, empty, or dot-leading name (".", "..", hidden files) gets
        // the raw name's hash appended so distinct raw names stay distinct.
        let dir = if cleaned != video || cleaned.is_empty() || cleaned.starts_with('.') {
            format!(
                "{}-{:08x}",
                cleaned.trim_start_matches('.'),
                persist::fnv1a(video.as_bytes()) as u32
            )
        } else {
            cleaned
        };
        self.root.join(dir)
    }

    /// The artifact path for a trained network stored under `key` for `video`.
    /// Exposed so tests and tooling can inspect (or corrupt) specific files.
    pub fn network_path(&self, video: &str, key: &str) -> PathBuf {
        self.video_dir(video)
            .join("nn")
            .join(format!("{:016x}.bzn", persist::fnv1a(key.as_bytes())))
    }

    /// The artifact path for a score matrix stored under `key` for `video`.
    pub fn scores_path(&self, video: &str, key: &str) -> PathBuf {
        self.video_dir(video)
            .join("scores")
            .join(format!("{:016x}.bzs", persist::fnv1a(key.as_bytes())))
    }

    /// Whether a trained network is stored under `key` for `video` (a cheap file
    /// presence check: used by plan warmth, so it must not decode anything).
    pub fn has_network(&self, video: &str, key: &str) -> bool {
        self.network_path(video, key).is_file()
    }

    /// Whether a score matrix is stored under `key` for `video`.
    pub fn has_scores(&self, video: &str, key: &str) -> bool {
        self.scores_path(video, key).is_file()
    }

    /// Loads the trained network stored under `key` for `video`, binding it to
    /// `clock`; `Ok(None)` when no artifact exists, a typed [`StoreError`] when
    /// one exists but cannot be decoded. Charges nothing to the simulated clock.
    pub fn load_network(
        &self,
        video: &str,
        key: &str,
        clock: &Arc<SimClock>,
    ) -> StoreResult<Option<SpecializedNN>> {
        let path = self.network_path(video, key);
        let Some(bytes) = read_if_exists(&path)? else { return Ok(None) };
        persist::decode_specialized_nn(&bytes, key, Arc::clone(clock))
            .map(Some)
            .map_err(|source| StoreError::Invalid { path, source })
    }

    /// Loads the score matrix stored under `key` for `video` (`Ok(None)` when
    /// absent, typed error when invalid). The result is bit-identical to the
    /// matrix that was stored. Charges nothing to the simulated clock.
    pub fn load_scores(&self, video: &str, key: &str) -> StoreResult<Option<ScoreMatrix>> {
        let path = self.scores_path(video, key);
        let Some(bytes) = read_if_exists(&path)? else { return Ok(None) };
        persist::decode_score_matrix(&bytes, key)
            .map(Some)
            .map_err(|source| StoreError::Invalid { path, source })
    }

    /// Stores (or replaces) a trained network under `key` for `video`.
    pub fn store_network(&self, video: &str, key: &str, nn: &SpecializedNN) -> StoreResult<()> {
        write_atomically(&self.network_path(video, key), &persist::encode_specialized_nn(nn, key))
    }

    /// Stores (or replaces) a score matrix under `key` for `video`.
    pub fn store_scores(&self, video: &str, key: &str, scores: &ScoreMatrix) -> StoreResult<()> {
        write_atomically(&self.scores_path(video, key), &persist::encode_score_matrix(scores, key))
    }
}

fn read_if_exists(path: &Path) -> StoreResult<Option<Vec<u8>>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err(path, e)),
    }
}

/// Writes via a uniquely-named temp file + rename so a crash mid-write leaves
/// either the old artifact or none — never a torn file that would read as
/// corrupt forever. The temp name carries the process id and a per-process
/// counter, so concurrent writers of the same artifact (two catalogs sharing
/// one store path) cannot interleave on one temp file; last rename wins with a
/// complete file either way.
fn write_atomically(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

    let dir = path.parent().ok_or_else(|| StoreError::Io {
        path: path.to_path_buf(),
        message: "artifact path has no parent directory".into(),
    })?;
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}
