//! Engine-level alias for the workspace sync shim.
//!
//! The shim itself lives in `blazeit_videostore::sync` (the bottom crate of
//! the dependency stack, so `blazeit-detect` and `blazeit-nn` can use the same
//! primitives), and this module re-exports it under the path the rest of the
//! engine and its docs use. See the shim module for the full primitive table
//! and the `model`-feature contract; in short:
//!
//! * normal builds: zero-cost poison-ignoring newtypes over `std::sync`;
//! * `--features model`: every acquire/release/load/store/wait becomes a
//!   scheduling point of the `blazeit-model` exhaustive interleaving explorer.
//!
//! Production code constructs all locks and atomics through this module (or
//! the `videostore` original) — enforced statically by the `sync-primitive`
//! check in `blazeit-lint` — and the ranked locks of the
//! `monitor → live_index → nn_cache → video` hierarchy are built with
//! [`Mutex::ranked`] using the constants from [`crate::lockorder`], which
//! makes the hierarchy an oracle for runtime assertions (debug builds), the
//! static lint, and the model checker simultaneously.

pub use blazeit_videostore::sync::{
    AtomicU64, Condvar, Mutex, MutexGuard, OnceLock, Ordering, RwLock, RwLockReadGuard,
    RwLockWriteGuard, MODEL_COMPILED_IN,
};
