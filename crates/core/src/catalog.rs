//! The catalog: many registered videos behind one declarative query surface.
//!
//! BlazeIt's premise is a declarative interface over a *corpus* of video streams, not
//! a single file. A [`Catalog`] owns one [`VideoContext`] per registered video — each
//! with its own labeled set, detector configuration, and per-video caches of trained
//! specialized networks and score indexes — plus the shared [`SimClock`] every
//! expensive operation charges. FrameQL queries are routed to the right context by
//! their `FROM` clause through a [`Session`]; a query naming
//! an unregistered video fails with [`BlazeItError::UnknownVideo`] listing what *is*
//! registered.
//!
//! Video names are normalized (ASCII-lowercased, `_` → `-`) for routing, so
//! `FROM night_street` and `FROM Night-Street` both reach the `night-street` stream.
//!
//! The catalog is **shared-by-default**: contexts live behind the sync shim's
//! [`RwLock`] as `Arc` snapshots, so every method takes `&self` — N sessions
//! (and the [`serve`](crate::serve) layer's worker threads) plan and execute
//! simultaneously against one `Arc<Catalog>`, and videos can be registered
//! while queries are in flight. Lookups hand out `Arc<VideoContext>` clones;
//! the short-lived contexts lock is never held across planning or execution.

use crate::config::BlazeItConfig;
use crate::context::VideoContext;
use crate::labeled::LabeledSet;
use crate::session::Session;
use crate::store::{IndexStore, StoreError};
use crate::stream::{DriftConfig, StreamState};
use crate::sync::RwLock;
use crate::{BlazeItError, Result};
use blazeit_detect::SimClock;
use blazeit_videostore::{DatasetPreset, Video, DAY_HELDOUT, DAY_TEST, DAY_TRAIN};
use std::path::Path;
use std::sync::Arc;

/// Store errors hit before a context (and so its `HealthState`) exists,
/// tagged with the operation that failed; recorded right after registration.
type CollectedStoreErrors = Vec<(&'static str, StoreError)>;

/// Normalizes a video name for routing: ASCII-lowercase, underscores to hyphens.
/// (Also the per-video directory name inside an [`IndexStore`].)
pub(crate) fn normalize(name: &str) -> String {
    name.to_ascii_lowercase().replace('_', "-")
}

/// Levenshtein edit distance between two (normalized) names, used to suggest the
/// closest registered video when a `FROM` clause misses.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        // blazeit-lint: allow(panic-site::index) -- Levenshtein DP: both rows are sized b.len() +
        // 1, so index 0 exists
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            // blazeit-lint: allow(panic-site::index) -- Levenshtein DP: j < b.len() from the
            // enumerate, rows are sized b.len() + 1
            let substitution = previous[j] + usize::from(ca != cb);
            // blazeit-lint: allow(panic-site::index) -- Levenshtein DP: j < b.len() from the
            // enumerate, rows are sized b.len() + 1
            current[j + 1] = substitution.min(previous[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    // blazeit-lint: allow(panic-site::index) -- Levenshtein DP: the row was sized b.len() + 1, so
    // b.len() is its last slot
    previous[b.len()]
}

/// The registered name most plausibly meant by `requested`: minimum edit distance
/// over normalized names, ties broken by registration order, and only offered when
/// the distance is small relative to the name — at most a third of the longer
/// name's length, so short names never produce coincidental "did you mean"
/// suggestions (a 2-edit distance between two 2-character names is not a typo).
fn nearest_name(requested: &str, available: &[String]) -> Option<String> {
    let requested = normalize(requested);
    let best = available
        .iter()
        .map(|name| (edit_distance(&requested, &normalize(name)), name))
        .min_by_key(|&(distance, _)| distance)?;
    let (distance, name) = best;
    (distance * 3 <= requested.len().max(name.len())).then(|| name.clone())
}

/// A catalog of registered videos sharing one simulated clock.
pub struct Catalog {
    clock: Arc<SimClock>,
    /// Registration-ordered contexts. The shim `RwLock` keeps registration
    /// `&self` (concurrent with queries); the `Arc`s make lookups snapshots,
    /// so the lock is released before any planning or execution happens.
    contexts: RwLock<Vec<Arc<VideoContext>>>,
    store: Option<Arc<IndexStore>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog").field("videos", &self.video_names()).finish()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// Creates an empty catalog with a fresh simulated clock.
    pub fn new() -> Catalog {
        Catalog { clock: SimClock::new(), contexts: RwLock::new(Vec::new()), store: None }
    }

    /// Creates an empty catalog whose per-video caches are backed by a durable
    /// [`IndexStore`] rooted at `path` (created if absent).
    ///
    /// Every video registered afterwards joins the read-through / write-behind
    /// hierarchy: trained specialized networks and score indexes are persisted as
    /// they are built, and a fresh catalog opened over the same path later
    /// answers repeat queries from disk with **zero** specialized-inference or
    /// training cost charged to the simulated clock — the paper's
    /// "BlazeIt (indexed)" scenario made durable.
    pub fn with_index_store(path: impl AsRef<Path>) -> Result<Catalog> {
        let store = IndexStore::open(path)?;
        Ok(Catalog {
            clock: SimClock::new(),
            contexts: RwLock::new(Vec::new()),
            store: Some(Arc::new(store)),
        })
    }

    /// Like [`Catalog::with_index_store`], with a size budget: the store keeps
    /// its total artifact bytes at or below `max_bytes` by evicting the
    /// least-recently-used artifacts (usage tracked in a small on-disk
    /// manifest, not filesystem mtimes). Storing an artifact that cannot fit
    /// even after evicting everything else fails with
    /// [`StoreError::BudgetExceeded`];
    /// the catalog's write-behind degrades to in-memory caching in that case.
    pub fn with_index_store_budget(path: impl AsRef<Path>, max_bytes: u64) -> Result<Catalog> {
        let store = IndexStore::open_with_budget(path, max_bytes)?;
        Ok(Catalog {
            clock: SimClock::new(),
            contexts: RwLock::new(Vec::new()),
            store: Some(Arc::new(store)),
        })
    }

    /// The durable index store behind this catalog's caches, if any.
    pub fn index_store(&self) -> Option<&Arc<IndexStore>> {
        self.store.as_ref()
    }

    /// Registers a video (the unseen test data) with a pre-built labeled set and
    /// per-stream configuration, returning its context.
    ///
    /// Fails if a video with the same (normalized) name is already registered.
    /// Registration takes `&self`: the context is built outside the contexts
    /// lock, then published under a short write section, so queries already in
    /// flight are never blocked on context construction.
    pub fn register(
        &self,
        video: Video,
        labeled: Arc<LabeledSet>,
        config: BlazeItConfig,
    ) -> Result<Arc<VideoContext>> {
        let ctx = Arc::new(VideoContext::with_store(
            video,
            labeled,
            config,
            Arc::clone(&self.clock),
            self.store.clone(),
        ));
        self.publish(ctx)
    }

    /// Publishes a freshly built context, enforcing name uniqueness under the
    /// write lock (the whole check-then-insert is one atomic section, so two
    /// concurrent registrations of the same name cannot both succeed).
    fn publish(&self, ctx: Arc<VideoContext>) -> Result<Arc<VideoContext>> {
        let key = normalize(ctx.video().name());
        let mut contexts = self.contexts.write();
        if contexts.iter().any(|c| normalize(c.video().name()) == key) {
            return Err(BlazeItError::Unsupported(format!(
                "video '{}' is already registered in this catalog",
                ctx.video().name()
            )));
        }
        contexts.push(Arc::clone(&ctx));
        Ok(ctx)
    }

    /// Registers one of the Table 3 presets: generates its three days (train,
    /// held-out, test) at `frames_per_day` frames each, builds the labeled set
    /// offline, and registers the test day under the preset's name.
    pub fn register_preset(
        &self,
        preset: DatasetPreset,
        frames_per_day: u64,
    ) -> Result<Arc<VideoContext>> {
        let config = BlazeItConfig::for_preset(preset);
        self.register_preset_with_config(preset, frames_per_day, config)
    }

    /// Like [`Catalog::register_preset`] but with an explicit configuration.
    pub fn register_preset_with_config(
        &self,
        preset: DatasetPreset,
        frames_per_day: u64,
        config: BlazeItConfig,
    ) -> Result<Arc<VideoContext>> {
        let test = preset.generate_with_frames(DAY_TEST, frames_per_day)?;
        let (labeled, store_errors) =
            self.build_or_load_labeled(preset, frames_per_day, &config)?;
        let ctx = self.register(test, labeled, config)?;
        // The labeled-set artifacts were read/written before the context
        // existed; its health state inherits their failures so EXPLAIN and
        // monitoring see them instead of a silent swallow.
        for (op, error) in &store_errors {
            ctx.health().record_store_error(op, error);
        }
        Ok(ctx)
    }

    /// Builds the labeled set for a preset — or, when this catalog has an
    /// index store that already holds the annotations for the same labeling
    /// identity (videos, detector, strides), loads them instead of re-running
    /// the offline detector pass ([`LabeledSet::annotation_cost_secs`] is zero
    /// for a loaded set). Freshly built annotations are written behind.
    fn build_or_load_labeled(
        &self,
        preset: DatasetPreset,
        frames_per_day: u64,
        config: &BlazeItConfig,
    ) -> Result<(Arc<LabeledSet>, CollectedStoreErrors)> {
        let train = preset.generate_with_frames(DAY_TRAIN, frames_per_day)?;
        let heldout = preset.generate_with_frames(DAY_HELDOUT, frames_per_day)?;
        let key = Self::labeled_store_key(&train, &heldout, config);
        let dir = normalize(preset.name());
        // The context (and so its HealthState) does not exist yet; failures
        // are collected here and recorded on the context right after
        // registration, so no store error is ever silently swallowed.
        let mut store_errors: Vec<(&'static str, StoreError)> = Vec::new();
        if let Some(store) = &self.store {
            match store.load_labeled(&dir, &key) {
                Ok(Some((train_day, heldout_day))) => {
                    if let Ok(set) = LabeledSet::from_parts(train, heldout, train_day, heldout_day)
                    {
                        return Ok((Arc::new(set), store_errors));
                    }
                    // An inconsistent artifact falls through to a rebuild,
                    // which overwrites it below (same healing rule as every
                    // other artifact class).
                    let train = preset.generate_with_frames(DAY_TRAIN, frames_per_day)?;
                    let heldout = preset.generate_with_frames(DAY_HELDOUT, frames_per_day)?;
                    let set = LabeledSet::build(train, heldout, config)?;
                    if let Err(e) = store.store_labeled(&dir, &key, set.train(), set.heldout()) {
                        store_errors.push(("store labeled set", e));
                    }
                    return Ok((Arc::new(set), store_errors));
                }
                Ok(None) => {}
                Err(e) => store_errors.push(("load labeled set", e)),
            }
        }
        let set = LabeledSet::build(train, heldout, config)?;
        if let Some(store) = &self.store {
            // Write-behind; a failing store degrades to building on every
            // open, and the error lands in the context's health state.
            if let Err(e) = store.store_labeled(&dir, &key, set.train(), set.heldout()) {
                store_errors.push(("store labeled set", e));
            }
        }
        Ok((Arc::new(set), store_errors))
    }

    /// The durable-store key for a labeled set: everything the annotations
    /// depend on — both videos' full identity and the labeling detector and
    /// strides. (Specialized-NN configuration is deliberately absent: the
    /// annotations are detector outputs, shared by every model trained on
    /// them.)
    fn labeled_store_key(train: &Video, heldout: &Video, config: &BlazeItConfig) -> String {
        format!(
            "labeled#{}#days{}-{}#vseed{}#{}x2#det{:?}#thr{}#strides{}-{}",
            train.name(),
            train.config().day,
            heldout.config().day,
            train.config().seed,
            train.len(),
            config.detection_method,
            config.detection_threshold,
            config.labeled_stride,
            config.heldout_stride,
        )
    }

    /// Registers a **live stream**: `capacity` is the full day the stream will
    /// eventually deliver (generated deterministically up front, as the
    /// synthetic stand-in for a camera feed), of which only the first
    /// `initial_frames` are ingested at registration. Frames arrive through
    /// [`Catalog::stream`] / [`StreamSource::advance`](crate::stream::StreamSource::advance);
    /// every cached score index is extended incrementally as they do, and
    /// `drift` configures the background refresh monitor.
    ///
    /// Queries (and [`Session::subscribe`](crate::session::Session::subscribe))
    /// see exactly the ingested prefix.
    pub fn register_stream(
        &self,
        capacity: Video,
        labeled: Arc<LabeledSet>,
        config: BlazeItConfig,
        initial_frames: u64,
        drift: DriftConfig,
    ) -> Result<Arc<VideoContext>> {
        let capacity = Arc::new(capacity);
        let initial = capacity.prefix(initial_frames.max(1).min(capacity.len()))?;
        let ctx = Arc::new(VideoContext::with_parts(
            initial,
            labeled,
            config,
            Arc::clone(&self.clock),
            self.store.clone(),
            Some(StreamState::new(capacity, drift)),
        ));
        self.publish(ctx)
    }

    /// Registers one of the Table 3 presets as a live stream: the labeled days
    /// are built (or loaded from the index store) as usual, the test day of
    /// `frames_per_day` frames becomes the stream's capacity, and ingestion
    /// starts at `initial_frames`.
    pub fn register_stream_preset(
        &self,
        preset: DatasetPreset,
        frames_per_day: u64,
        initial_frames: u64,
        drift: DriftConfig,
    ) -> Result<Arc<VideoContext>> {
        let config = BlazeItConfig::for_preset(preset);
        let capacity = preset.generate_with_frames(DAY_TEST, frames_per_day)?;
        let (labeled, store_errors) =
            self.build_or_load_labeled(preset, frames_per_day, &config)?;
        let ctx = self.register_stream(capacity, labeled, config, initial_frames, drift)?;
        for (op, error) in &store_errors {
            ctx.health().record_store_error(op, error);
        }
        Ok(ctx)
    }

    /// Looks up a registered video's context by (normalized) name.
    ///
    /// A miss fails with [`BlazeItError::UnknownVideo`] listing every registered
    /// stream, suggesting the nearest registered name (by edit distance) when the
    /// request looks like a typo, and reminding that `FROM *` spans the catalog.
    pub fn context(&self, name: &str) -> Result<Arc<VideoContext>> {
        let key = normalize(name);
        self.contexts
            .read()
            .iter()
            .find(|c| normalize(c.video().name()) == key)
            .cloned()
            .ok_or_else(|| self.unknown_video(name))
    }

    /// The routing error for an unregistered name, with the nearest-name hint.
    pub(crate) fn unknown_video(&self, name: &str) -> BlazeItError {
        let available = self.video_names();
        let hint = nearest_name(name, &available);
        BlazeItError::UnknownVideo { requested: name.to_string(), available, hint }
    }

    /// The registered video names, in registration order.
    pub fn video_names(&self) -> Vec<String> {
        self.contexts.read().iter().map(|c| c.video().name().to_string()).collect()
    }

    /// A snapshot of every registered context, in registration order. The
    /// contexts lock is released before this returns: the snapshot stays
    /// valid (each entry is an `Arc`) but does not observe registrations that
    /// land afterwards.
    pub fn contexts(&self) -> Vec<Arc<VideoContext>> {
        self.contexts.read().clone()
    }

    /// Number of registered videos.
    pub fn len(&self) -> usize {
        self.contexts.read().len()
    }

    /// Whether the catalog has no registered videos.
    pub fn is_empty(&self) -> bool {
        self.contexts.read().is_empty()
    }

    /// The shared simulated clock all registered videos charge.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Resets the shared clock (useful between experiments sharing one catalog).
    pub fn reset_clock(&self) {
        self.clock.reset();
    }

    /// Opens a query session over this catalog.
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazeit_detect::ObjectDetector;
    use blazeit_videostore::ObjectClass;

    #[test]
    fn register_and_lookup_with_normalization() {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::NightStreet, 600).unwrap();
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.is_empty());
        // Underscore and case variants all route to the hyphenated stream.
        for name in ["night-street", "night_street", "NIGHT_STREET"] {
            assert_eq!(catalog.context(name).unwrap().video().name(), "night-street");
        }
    }

    #[test]
    fn unknown_video_error_lists_registered_names() {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 600).unwrap();
        catalog.register_preset(DatasetPreset::Amsterdam, 600).unwrap();
        let err = catalog.context("rialto").unwrap_err();
        match err {
            BlazeItError::UnknownVideo { requested, available, hint } => {
                assert_eq!(requested, "rialto");
                assert_eq!(available, vec!["taipei".to_string(), "amsterdam".to_string()]);
                // "rialto" is not a plausible typo of either registered name.
                assert_eq!(hint, None);
            }
            other => panic!("expected UnknownVideo, got {other:?}"),
        }
    }

    #[test]
    fn unknown_video_error_suggests_the_nearest_name() {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 600).unwrap();
        catalog.register_preset(DatasetPreset::Amsterdam, 600).unwrap();
        let err = catalog.context("amstredam").unwrap_err();
        match &err {
            BlazeItError::UnknownVideo { hint, .. } => {
                assert_eq!(hint.as_deref(), Some("amsterdam"));
            }
            other => panic!("expected UnknownVideo, got {other:?}"),
        }
        // Short names never produce coincidental suggestions: every registered name
        // is 2 edits from "zz", which is not a plausible typo of anything here.
        match catalog.context("zz").unwrap_err() {
            BlazeItError::UnknownVideo { hint, .. } => assert_eq!(hint, None),
            other => panic!("expected UnknownVideo, got {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("did you mean 'amsterdam'?"), "{rendered}");
        assert!(rendered.contains("FROM * queries every registered video"), "{rendered}");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 600).unwrap();
        let err = catalog.register_preset(DatasetPreset::Taipei, 600);
        assert!(matches!(err, Err(BlazeItError::Unsupported(_))));
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn contexts_share_the_catalog_clock() {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 600).unwrap();
        catalog.register_preset(DatasetPreset::Amsterdam, 600).unwrap();
        assert_eq!(catalog.clock().total(), 0.0);
        let ctx = catalog.context("taipei").unwrap();
        ctx.detector().detect(&ctx.video(), 0);
        assert!(catalog.clock().total() > 0.0);
        let before = catalog.clock().total();
        let ctx2 = catalog.context("amsterdam").unwrap();
        ctx2.detector().detect(&ctx2.video(), 0);
        assert!(catalog.clock().total() > before, "both contexts charge the shared clock");
        catalog.reset_clock();
        assert_eq!(catalog.clock().total(), 0.0);
    }

    #[test]
    fn per_video_udfs_via_shared_context() {
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 600).unwrap();
        catalog
            .context("taipei")
            .unwrap()
            .register_udf("always_seven", true, |_, _| blazeit_frameql::Value::Number(7.0));
        assert!(catalog.context("taipei").unwrap().udfs().contains("always_seven"));
        let _ = ObjectClass::Car;
    }

    #[test]
    fn registration_is_concurrent_with_lookups() {
        // The tentpole contract: `register*` takes `&self`, so a shared
        // `Arc<Catalog>` accepts new videos while other threads query it.
        let catalog = Arc::new(Catalog::new());
        catalog.register_preset(DatasetPreset::Taipei, 600).unwrap();
        std::thread::scope(|s| {
            let c = Arc::clone(&catalog);
            s.spawn(move || c.register_preset(DatasetPreset::Amsterdam, 600).map(|_| ()));
            for _ in 0..50 {
                assert_eq!(catalog.context("taipei").unwrap().video().name(), "taipei");
            }
        });
        assert_eq!(catalog.len(), 2);
        // Concurrent duplicate registration: exactly one winner.
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&catalog);
                    s.spawn(move || c.register_preset(DatasetPreset::Rialto, 600).is_ok())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(outcomes.iter().filter(|&&ok| ok).count(), 1);
        assert_eq!(catalog.len(), 3);
    }
}
