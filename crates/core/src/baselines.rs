//! The baselines every experiment in the paper compares against.
//!
//! * **Naive**: run the object detector on every frame (or scan sequentially until the
//!   requested number of events is found, for scrubbing).
//! * **NoScope (oracle)**: a strictly-more-powerful idealization of NoScope — an oracle
//!   that knows, for free, whether each frame contains at least one object of a class.
//!   The detector is then only run on frames the oracle says are occupied (Section
//!   10.1.1 of the paper). Because NoScope cannot count or localize, every occupied
//!   frame still needs full detection for counting / scrubbing / selection queries.
//! * **Naive AQP** lives in [`crate::aggregate::naive_aqp_fcount`].
//!
//! The functions here also provide *oracle* (uncharged) ground-truth computations used
//! by harnesses and tests to measure accuracy without perturbing the cost accounting.

use crate::context::VideoContext;
use crate::relation::RelationBuilder;
use crate::{BlazeItError, Result};
use blazeit_detect::{
    count_class, CountVector, Detection, ObjectDetector, SimClock, SimulatedDetector,
};
use blazeit_frameql::query::ClassRequirement;
use blazeit_videostore::{FrameIndex, ObjectClass, Video};
use std::collections::BTreeSet;

/// How many frames each full-scan baseline hands to [`ObjectDetector::detect_batch`]
/// at a time. Large enough to amortize per-call bookkeeping, small enough to keep
/// per-chunk detection buffers modest.
const DETECT_CHUNK: usize = 1024;

/// Converts plan requirements into `(class, min_count)` pairs.
pub fn requirement_pairs(requirements: &[ClassRequirement]) -> Vec<(ObjectClass, usize)> {
    requirements.iter().map(|r| (r.class, r.min_count)).collect()
}

/// Runs `visit(frame, detections)` over `frames` in detection batches of
/// [`DETECT_CHUNK`], using `detector`. The shared driver behind every full-scan
/// baseline: detection is batched, while the visitor (counting, tracking, row
/// materialization) stays sequential and order-preserving.
fn scan_detections(
    detector: &dyn ObjectDetector,
    video: &Video,
    frames: &[FrameIndex],
    mut visit: impl FnMut(FrameIndex, &[Detection]),
) {
    for chunk in frames.chunks(DETECT_CHUNK) {
        let batch = detector.detect_batch(video, chunk);
        for (&frame, detections) in chunk.iter().zip(&batch) {
            visit(frame, detections);
        }
    }
}

fn all_frames(video: &Video) -> Vec<FrameIndex> {
    (0..video.len()).collect()
}

fn count_for(detections: &[Detection], class: Option<ObjectClass>) -> usize {
    match class {
        Some(c) => count_class(detections, c),
        None => detections.len(),
    }
}

/// Naive exact FCOUNT: object detection on every frame (in batches).
/// Returns `(fcount, detector calls)`.
pub fn naive_fcount(ctx: &VideoContext, class: Option<ObjectClass>) -> Result<(f64, u64)> {
    let video = ctx.video();
    let video = &*video;
    let mut total = 0usize;
    scan_detections(ctx.detector(), video, &all_frames(video), |_, detections| {
        total += count_for(detections, class);
    });
    Ok((total as f64 / video.len().max(1) as f64, video.len()))
}

/// NoScope-oracle FCOUNT: the binary-presence oracle is free, and the detector is run
/// (in batches) only on frames that contain at least one object of the class (it must
/// be, because NoScope cannot distinguish one object from several).
/// Returns `(fcount, detector calls)`.
pub fn noscope_fcount(ctx: &VideoContext, class: ObjectClass) -> Result<(f64, u64)> {
    let video = ctx.video();
    let video = &*video;
    let occupied: Vec<FrameIndex> =
        (0..video.len()).filter(|&f| video.scene().count_at(f, class) > 0).collect();
    let mut total = 0usize;
    scan_detections(ctx.detector(), video, &occupied, |_, detections| {
        total += count_class(detections, class);
    });
    Ok((total as f64 / video.len().max(1) as f64, occupied.len() as u64))
}

/// Ground-truth FCOUNT relative to the configured detector, computed *without charging
/// the shared clock* (for accuracy evaluation only). Returns `(fcount, frames scanned)`.
pub fn oracle_fcount(ctx: &VideoContext, class: Option<ObjectClass>) -> (f64, u64) {
    let offline = SimClock::new();
    let detector = SimulatedDetector::new(
        ctx.config().detection_method,
        ctx.config().detection_threshold,
        offline,
    );
    let video = ctx.video();
    let video = &*video;
    let mut total = 0usize;
    scan_detections(&detector, video, &all_frames(video), |_, detections| {
        total += count_for(detections, class);
    });
    (total as f64 / video.len().max(1) as f64, video.len())
}

/// Per-frame detector counts for the whole unseen video, computed without charging the
/// ctx clock. Used by harnesses to find ground-truth event frames.
pub fn oracle_counts(ctx: &VideoContext, video: &Video) -> Vec<CountVector> {
    let offline = SimClock::new();
    let detector = SimulatedDetector::new(
        ctx.config().detection_method,
        ctx.config().detection_threshold,
        offline,
    );
    let mut counts = Vec::with_capacity(video.len() as usize);
    scan_detections(&detector, video, &all_frames(video), |_, detections| {
        counts.push(CountVector::from_detections(detections));
    });
    counts
}

/// Exact `COUNT(DISTINCT trackid)`: batched detection + sequential entity resolution
/// over every frame. Returns `(distinct track count, detector calls)`.
pub fn exact_distinct_count(ctx: &VideoContext, class: Option<ObjectClass>) -> Result<(f64, u64)> {
    let video = ctx.video();
    let video = &*video;
    let mut builder = RelationBuilder::new(ctx.detector(), ctx.config().tracker_iou, 1);
    let mut tracks: BTreeSet<u64> = BTreeSet::new();
    scan_detections(ctx.detector(), video, &all_frames(video), |frame, detections| {
        for row in builder.rows_for_detections(video, frame, detections) {
            if class.map(|c| c == row.class).unwrap_or(true) {
                tracks.insert(row.trackid);
            }
        }
    });
    Ok((tracks.len() as f64, video.len()))
}

/// Checks the GAP constraint: `frame` must be at least `gap` frames from every frame
/// already accepted.
pub fn respects_gap(accepted: &[FrameIndex], frame: FrameIndex, gap: u64) -> bool {
    accepted.iter().all(|&a| a.abs_diff(frame) >= gap)
}

/// Naive scrubbing: scan frames in order, running the detector on each, until `limit`
/// frames satisfying the requirements (and the GAP constraint) are found.
/// Returns `(matching frames, detector calls)`.
///
/// Deliberately *not* batched: the scan stops at the `limit`-th hit and the GAP
/// check depends on previously accepted frames, so batching detection ahead of
/// the cursor would change the number of detector calls the baseline reports.
pub fn naive_scrub(
    ctx: &VideoContext,
    requirements: &[(ObjectClass, usize)],
    limit: u64,
    gap: u64,
) -> Result<(Vec<FrameIndex>, u64)> {
    if requirements.is_empty() {
        return Err(BlazeItError::Unsupported("scrubbing requires class requirements".into()));
    }
    let video = ctx.video();
    let video = &*video;
    let mut accepted = Vec::new();
    let mut calls = 0u64;
    for frame in 0..video.len() {
        if accepted.len() as u64 >= limit {
            break;
        }
        if !respects_gap(&accepted, frame, gap) {
            continue;
        }
        let detections = ctx.detector().detect(video, frame);
        calls += 1;
        let counts = CountVector::from_detections(&detections);
        if counts.satisfies_all(requirements) {
            accepted.push(frame);
        }
    }
    Ok((accepted, calls))
}

/// NoScope-oracle scrubbing: like [`naive_scrub`], but frames lacking binary presence of
/// *any* required class are skipped for free.
pub fn noscope_scrub(
    ctx: &VideoContext,
    requirements: &[(ObjectClass, usize)],
    limit: u64,
    gap: u64,
) -> Result<(Vec<FrameIndex>, u64)> {
    if requirements.is_empty() {
        return Err(BlazeItError::Unsupported("scrubbing requires class requirements".into()));
    }
    let video = ctx.video();
    let video = &*video;
    let mut accepted = Vec::new();
    let mut calls = 0u64;
    for frame in 0..video.len() {
        if accepted.len() as u64 >= limit {
            break;
        }
        if !respects_gap(&accepted, frame, gap) {
            continue;
        }
        // Free binary-presence oracle: every required class must be present at all.
        let present =
            requirements.iter().all(|&(class, _)| video.scene().count_at(frame, class) > 0);
        if !present {
            continue;
        }
        let detections = ctx.detector().detect(video, frame);
        calls += 1;
        let counts = CountVector::from_detections(&detections);
        if counts.satisfies_all(requirements) {
            accepted.push(frame);
        }
    }
    Ok((accepted, calls))
}

/// Naive content-based selection: batched detection + sequential tracking on every
/// frame, row predicates evaluated afterwards. Returns `(rows, detector calls)`.
pub fn naive_selection_scan(
    ctx: &VideoContext,
    class: Option<ObjectClass>,
) -> Result<(Vec<blazeit_frameql::FrameQlRow>, u64)> {
    let video = ctx.video();
    let video = &*video;
    let mut builder = RelationBuilder::new(ctx.detector(), ctx.config().tracker_iou, 1);
    let mut rows = Vec::new();
    scan_detections(ctx.detector(), video, &all_frames(video), |frame, detections| {
        for row in builder.rows_for_detections(video, frame, detections) {
            if class.map(|c| c == row.class).unwrap_or(true) {
                rows.push(row);
            }
        }
    });
    Ok((rows, video.len()))
}

/// NoScope-oracle selection: batched detection + sequential tracking only on frames
/// where the class is present (binary presence known for free).
pub fn noscope_selection_scan(
    ctx: &VideoContext,
    class: ObjectClass,
) -> Result<(Vec<blazeit_frameql::FrameQlRow>, u64)> {
    let video = ctx.video();
    let video = &*video;
    let occupied: Vec<FrameIndex> =
        (0..video.len()).filter(|&f| video.scene().count_at(f, class) > 0).collect();
    let mut builder = RelationBuilder::new(ctx.detector(), ctx.config().tracker_iou, 1);
    let mut rows = Vec::new();
    scan_detections(ctx.detector(), video, &occupied, |frame, detections| {
        for row in builder.rows_for_detections(video, frame, detections) {
            if row.class == class {
                rows.push(row);
            }
        }
    });
    Ok((rows, occupied.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BlazeIt;
    use blazeit_videostore::DatasetPreset;

    fn engine() -> BlazeIt {
        BlazeIt::for_preset(DatasetPreset::Taipei, 1_200).unwrap()
    }

    #[test]
    fn naive_fcount_charges_every_frame() {
        let e = engine();
        let before = e.clock().breakdown().detection;
        let (fcount, calls) = naive_fcount(&e, Some(ObjectClass::Car)).unwrap();
        assert_eq!(calls, 1_200);
        assert!(fcount > 0.0);
        let charged = e.clock().breakdown().detection - before;
        let per_frame = e.detector().cost_per_frame(&e.video());
        assert!((charged - 1_200.0 * per_frame).abs() < 1e-6);
    }

    #[test]
    fn noscope_fcount_is_cheaper_and_close() {
        let e = engine();
        let (naive_value, naive_calls) = naive_fcount(&e, Some(ObjectClass::Car)).unwrap();
        let (ns_value, ns_calls) = noscope_fcount(&e, ObjectClass::Car).unwrap();
        assert!(ns_calls < naive_calls);
        // The oracle skips only truly-empty frames; small differences can arise from
        // spurious detections on empty frames, which are rare.
        assert!((naive_value - ns_value).abs() < 0.1, "{naive_value} vs {ns_value}");
    }

    #[test]
    fn oracle_fcount_does_not_charge_clock() {
        let e = engine();
        let before = e.clock().total();
        let (value, _) = oracle_fcount(&e, Some(ObjectClass::Car));
        assert!(value > 0.0);
        assert_eq!(e.clock().total(), before);
    }

    #[test]
    fn gap_constraint_checker() {
        assert!(respects_gap(&[], 100, 50));
        assert!(respects_gap(&[10], 100, 50));
        assert!(!respects_gap(&[80], 100, 50));
        assert!(respects_gap(&[80], 100, 20));
    }

    #[test]
    fn naive_scrub_finds_events_in_order_with_gap() {
        let e = engine();
        let reqs = [(ObjectClass::Car, 1usize)];
        let (frames, calls) = naive_scrub(&e, &reqs, 5, 30).unwrap();
        assert!(frames.len() <= 5);
        assert!(calls >= frames.len() as u64);
        let mut sorted = frames.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, frames, "naive scan returns frames in order");
        for pair in frames.windows(2) {
            assert!(pair[1] - pair[0] >= 30);
        }
    }

    #[test]
    fn noscope_scrub_uses_no_more_calls_than_naive() {
        let e = engine();
        let reqs = [(ObjectClass::Bus, 1usize)];
        let (naive_frames, naive_calls) = naive_scrub(&e, &reqs, 3, 30).unwrap();
        let (ns_frames, ns_calls) = noscope_scrub(&e, &reqs, 3, 30).unwrap();
        assert!(ns_calls <= naive_calls);
        // Both must find (roughly) the same events; the oracle only skips frames with
        // no bus at all.
        assert_eq!(naive_frames.len(), ns_frames.len());
    }

    #[test]
    fn scrub_requires_requirements() {
        let e = engine();
        assert!(naive_scrub(&e, &[], 3, 0).is_err());
        assert!(noscope_scrub(&e, &[], 3, 0).is_err());
    }

    #[test]
    fn selection_scans_filter_by_class() {
        let e = engine();
        let (rows, calls) = noscope_selection_scan(&e, ObjectClass::Bus).unwrap();
        assert!(calls < e.video().len());
        assert!(rows.iter().all(|r| r.class == ObjectClass::Bus));
    }
}
