//! Quickstart: register streams in a catalog, EXPLAIN a query, then run one of each
//! query class through a session.
//!
//! Run with `cargo run --release --example quickstart`.

use blazeit::prelude::*;

fn main() {
    // Three synthetic days of the "taipei" intersection are generated (train, held-out,
    // test); the first two are annotated offline by the simulated detector to form the
    // labeled set, and queries run over the unseen test day.
    let frames_per_day = 6_000;
    println!("generating taipei ({frames_per_day} frames per day) and building the labeled set...");
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, frames_per_day).expect("register");
    let session = catalog.session();

    // 0. EXPLAIN: the optimizer's plan, rendered without charging the simulated clock.
    let explain = session
        .query(
            "EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%",
        )
        .expect("explain");
    println!("\n{}", explain.output.explain_plan().expect("explain output"));
    println!("(EXPLAIN charged {:.1} simulated seconds)", explain.cost.total());

    // 1. An aggregate with an error bound: how many cars are in a frame on average?
    let aggregate = session
        .query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%",
        )
        .expect("aggregate query");
    println!("\n[aggregate] {}", aggregate.query);
    if let QueryOutput::Aggregate { value, method, detection_calls, .. } = &aggregate.output {
        println!(
            "  FCOUNT(car) ~= {value:.3}  (plan: {method:?}, {detection_calls} detector calls, \
             {:.1} simulated GPU-seconds)",
            aggregate.runtime_secs()
        );
    }

    // 2. A scrubbing query: find 5 frames with at least one bus and one car, 10 s apart.
    let scrub = session
        .query(
            "SELECT timestamp FROM taipei GROUP BY timestamp \
             HAVING SUM(class='bus')>=1 AND SUM(class='car')>=1 LIMIT 5 GAP 300",
        )
        .expect("scrubbing query");
    println!("\n[scrubbing] {}", scrub.query);
    if let QueryOutput::Frames { frames, detection_calls } = &scrub.output {
        println!(
            "  found {} frames {:?} with {detection_calls} detector calls ({:.1} simulated s)",
            frames.len(),
            frames,
            scrub.runtime_secs()
        );
    }

    // 3. A content-based selection, prepared first so the plan can be inspected (and
    //    overridden with `with_options` / `with_budget`) before paying for execution.
    let prepared = session
        .prepare(
            "SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 10 \
             AND area(mask) > 20000 GROUP BY trackid HAVING COUNT(*) > 15",
        )
        .expect("prepare selection");
    println!("\n[selection] plan before running:\n{}", prepared.explain());
    let select = prepared.run().expect("selection query");
    if let QueryOutput::Rows { rows, detection_calls } = &select.output {
        let tracks: std::collections::BTreeSet<u64> = rows.iter().map(|r| r.trackid).collect();
        println!(
            "  {} matching rows across {} red-bus tracks, {detection_calls} detector calls \
             ({:.1} simulated s)",
            rows.len(),
            tracks.len(),
            select.runtime_secs()
        );
    }

    println!("\ntotal simulated GPU time charged this session: {:.1} s", catalog.clock().total());
}
