//! Live streaming: continuous FCOUNT over a growing camera feed, with a
//! drift-triggered background model refresh.
//!
//! A traffic camera is registered as a *stream*: only the first minute is
//! ingested up front, and the rest arrives while a subscribed FCOUNT query
//! keeps emitting per-tick estimates from the incrementally maintained score
//! index. Halfway through the day the injected distribution shift (rush hour:
//! 8x the cars) trips the drift monitor, which retrains the specialized
//! network in the background and swaps it in atomically — visible here as the
//! model generation changing between updates.
//!
//! Run with `cargo run --release --example live_stream`.

use blazeit::prelude::*;
use blazeit::videostore::scene::ScenePhase;
use std::sync::Arc;

fn main() {
    // A calm/busy day: taipei's scene, with rush hour starting at frame 1800.
    let preset = DatasetPreset::Taipei;
    let mut day = preset.video_config_with_frames(DAY_TEST, 3_600);
    day.scene.day_variation = 0.0;
    day.scene.diurnal_amplitude = 0.0;
    let calm = day.scene.clone();
    let mut rush_hour = calm.clone();
    for profile in &mut rush_hour.classes {
        if profile.class == ObjectClass::Car {
            profile.mean_concurrent *= 8.0;
        }
    }
    let capacity = Video::generate_phased(
        day,
        &[
            ScenePhase { config: calm.clone(), num_frames: 1_800 },
            ScenePhase { config: rush_hour, num_frames: 1_800 },
        ],
    )
    .expect("generate the drifting day");

    // Labeled days share the calm statistics (the model is trained before rush
    // hour exists — that is exactly why it must eventually refresh).
    let config = BlazeItConfig::for_preset(preset);
    let mut train_cfg = preset.video_config_with_frames(DAY_TRAIN, 1_800);
    train_cfg.scene = calm.clone();
    let mut heldout_cfg = train_cfg.for_day(DAY_HELDOUT);
    heldout_cfg.num_frames = 1_800;
    let labeled = Arc::new(
        LabeledSet::build(
            Video::generate(train_cfg).unwrap(),
            Video::generate(heldout_cfg).unwrap(),
            &config,
        )
        .unwrap(),
    );

    let catalog = Catalog::new();
    catalog
        .register_stream(
            capacity,
            labeled,
            config,
            900, // the first 30 seconds are already ingested
            DriftConfig {
                window: 600,
                check_every: 300,
                threshold: 0.30,
                ..DriftConfig::default()
            },
        )
        .unwrap();
    let session = catalog.session();

    // EXPLAIN renders the stream state for free at any time.
    let sql = "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' \
               WINDOW 600 FRAMES EVERY 300 FRAMES";
    println!(
        "{}\n",
        session
            .prepare(&format!("EXPLAIN {sql}"))
            .unwrap()
            .run()
            .unwrap()
            .output
            .explain_plan()
            .unwrap()
    );

    let mut subscription = session.subscribe(sql).expect("subscribe the continuous query");
    let stream = catalog.stream("taipei").unwrap();
    println!("subscribed: every {} frames over a {}-frame window\n", subscription.every(), 600);

    while !stream.is_exhausted() {
        let report = stream.advance(300).unwrap();
        for refresh in &report.refreshes {
            println!(
                ">>> drift {:.3} crossed the threshold: background retrain swapped in \
                 generation {} (labeled {} window frames with the detector)",
                refresh.drift_score, refresh.new_generation, refresh.labeled_frames
            );
        }
        for update in subscription.poll().unwrap() {
            println!(
                "tick {:>5}  frames [{:>5}, {:>5})  FCOUNT {:.2} ± {:.2}  \
                 (95% CI [{:.2}, {:.2}], model generation {})",
                update.tick,
                update.range.0,
                update.range.1,
                update.value,
                update.standard_error,
                update.ci.0,
                update.ci.1,
                update.generation,
            );
        }
    }

    println!("\nfinal stream state:");
    let explained = session.prepare(&format!("EXPLAIN {sql}")).unwrap().run().unwrap();
    println!("{}", explained.output.explain_plan().unwrap());
    let cost = catalog.clock().breakdown();
    println!(
        "\nsimulated cost: {:.1}s specialized inference (each frame scored once per \
         generation), {:.1}s detection (drift-refresh labeling only), {:.1}s training",
        cost.specialized, cost.detection, cost.training
    );
}
