//! City-wide queries: one FrameQL statement spanning every camera in the catalog.
//!
//! The deployments BlazeIt targets are many-camera installations, where the natural
//! production question is "across every intersection feed, ..." rather than
//! per-stream. This example registers three car streams, then runs one query of
//! each class over the whole catalog with `FROM *`:
//!
//! * an aggregate whose per-video estimates sum into a catalog-wide total with a
//!   composed confidence interval,
//! * a scrubbing query with one *global* LIMIT interleaved across the per-video
//!   rankings (early-cancelling videos once it is satisfied),
//! * a selection whose rows come back tagged with their source video.
//!
//! Run with `cargo run --release --example citywide`.

use blazeit::prelude::*;

fn main() {
    let frames_per_day = 5_000;
    println!("registering three intersections ({frames_per_day} frames per day each)...");
    let catalog = Catalog::new();
    for preset in [DatasetPreset::Taipei, DatasetPreset::NightStreet, DatasetPreset::Amsterdam] {
        catalog.register_preset(preset, frames_per_day).expect("register");
    }
    let session = catalog.session();

    // EXPLAIN fans out into one sub-plan per video, each with its own strategy and
    // cache warmth — and charges nothing to the simulated clock.
    let explain = session
        .query("EXPLAIN SELECT FCOUNT(*) FROM * WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%")
        .expect("explain");
    println!("\n{}", explain.output.explain_plan().expect("plan"));

    // 1. Catalog-wide aggregate: per-video samplers run in parallel; estimates sum,
    //    standard errors compose as the root-sum-square of independent samplers.
    let aggregate = session
        .query("SELECT FCOUNT(*) FROM * WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%")
        .expect("aggregate");
    if let QueryOutput::CatalogAggregate { value, standard_error, detection_calls, per_video } =
        &aggregate.output
    {
        println!("\n[aggregate] catalog-wide FCOUNT(car) ~= {value:.3} (se {:?})", standard_error);
        for v in per_video {
            println!(
                "  {:>14}: {:.3} via {:?} ({} detector calls)",
                v.video, v.value, v.method, v.detection_calls
            );
        }
        println!(
            "  {} detector calls total, {:.1} simulated GPU-seconds",
            detection_calls,
            aggregate.runtime_secs()
        );
    }

    // 2. Global-limit scrubbing: find 20 frames with 2+ simultaneous cars anywhere
    //    in the city; the interleaved ranking stops charging every video the moment
    //    the 20th frame is verified.
    let scrub = session
        .query(
            "SELECT timestamp FROM * GROUP BY timestamp \
             HAVING SUM(class='car') >= 2 LIMIT 20 GAP 150",
        )
        .expect("scrub");
    if let QueryOutput::CatalogFrames { frames, detection_calls } = &scrub.output {
        let mut by_video = std::collections::BTreeMap::<&str, usize>::new();
        for sf in frames {
            *by_video.entry(sf.video.as_str()).or_default() += 1;
        }
        println!(
            "\n[scrubbing] {} frames with >=2 cars across the catalog \
             ({detection_calls} detector calls): {by_video:?}",
            frames.len()
        );
    }

    // 3. Source-tagged selection over an explicit video list.
    let select = session
        .query("SELECT * FROM taipei, amsterdam WHERE class = 'bus' AND area(mask) > 20000")
        .expect("selection");
    if let QueryOutput::CatalogRows { rows, detection_calls } = &select.output {
        println!(
            "\n[selection] {} large-bus rows from two feeds ({} detector calls); first tags: {:?}",
            rows.len(),
            detection_calls,
            rows.iter().take(3).map(|r| r.video.as_str()).collect::<Vec<_>>()
        );
    }

    println!("\ntotal simulated GPU time charged: {:.1} s", catalog.clock().total());
}
