//! Rare-event scrubbing (the autonomous-vehicle analyst use case of Section 2): search
//! a long stream for a handful of frames containing an unusually busy moment, and
//! compare how many expensive detector calls each strategy needs.
//!
//! Run with `cargo run --release --example rare_event_search`.

use blazeit::core::baselines;
use blazeit::core::scrub::{blazeit_scrub, specialized_for_requirements, ScrubOptions};
use blazeit::prelude::*;

fn main() {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Amsterdam, 12_000).expect("register");
    let engine = catalog.context("amsterdam").expect("registered");
    let engine = &*engine;
    let class = ObjectClass::Car;

    // Pick a genuinely rare event on this stream: the highest simultaneous car count
    // that still has at least 15 occurrences on the test day (the paper's Table 6 rule).
    let counts = baselines::oracle_counts(engine, &engine.video());
    let max = counts.iter().map(|c| c.get(class)).max().unwrap_or(1);
    let threshold = (1..=max)
        .rev()
        .find(|&n| counts.iter().filter(|c| c.get(class) >= n).count() >= 15)
        .unwrap_or(1);
    let instances = counts.iter().filter(|c| c.get(class) >= threshold).count();
    println!(
        "searching amsterdam for frames with >= {threshold} cars ({instances} such frames out of {})",
        engine.video().len()
    );

    let requirements = [(class, threshold)];
    let opts = ScrubOptions { limit: 10, gap: 300 };

    // Naive sequential scan.
    let (naive_frames, naive_calls) =
        baselines::naive_scrub(engine, &requirements, opts.limit, opts.gap).expect("naive");
    // NoScope oracle: skips frames with no car at all, for free.
    let (_, noscope_calls) =
        baselines::noscope_scrub(engine, &requirements, opts.limit, opts.gap).expect("noscope");
    // BlazeIt: importance ordering by specialized-NN confidence.
    let nn = specialized_for_requirements(engine, &requirements).expect("specialized NN");
    let outcome = blazeit_scrub(engine, &nn, &requirements, opts).expect("blazeit");

    println!("\n{:<20} {:>16} {:>12}", "method", "detector calls", "found");
    println!("{:<20} {:>16} {:>12}", "naive scan", naive_calls, naive_frames.len());
    println!("{:<20} {:>16} {:>12}", "noscope (oracle)", noscope_calls, naive_frames.len());
    println!("{:<20} {:>16} {:>12}", "blazeit", outcome.detection_calls, outcome.frames.len());
    println!(
        "\nBlazeIt inspected {:.2}% of the frames the naive scan needed.",
        100.0 * outcome.detection_calls as f64 / naive_calls.max(1) as f64
    );
    println!("frames found by BlazeIt (confidence order): {:?}", outcome.frames);
}
