//! Urban planning (Section 2 of the paper): traffic metering and transit analysis.
//!
//! An urban planner counts cars through an intersection to compare traffic volumes, and
//! then looks for moments where a bus and several cars share the intersection. This
//! example runs both workloads and compares BlazeIt against the naive and
//! NoScope-oracle baselines on simulated GPU time.
//!
//! Run with `cargo run --release --example urban_planning`.

use blazeit::core::baselines;
use blazeit::core::metrics::{format_speedup_table, RuntimeReport};
use blazeit::prelude::*;

fn main() {
    let frames_per_day = 9_000; // five simulated minutes per day at 30 fps
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, frames_per_day).expect("register");
    let session = catalog.session();
    let engine = catalog.context("taipei").expect("registered");
    let engine = &*engine;
    let class = ObjectClass::Car;

    println!("== traffic metering: average cars per frame ==");
    // Naive baseline: detector on every frame.
    let before = engine.clock().breakdown();
    let (naive_value, naive_calls) = baselines::naive_fcount(engine, Some(class)).expect("naive");
    let naive_cost = engine.clock().breakdown().since(&before);
    let naive = RuntimeReport::from_cost("naive", naive_cost, naive_calls);

    // NoScope oracle: detector only on frames that contain a car at all.
    let before = engine.clock().breakdown();
    let (_, ns_calls) = baselines::noscope_fcount(engine, class).expect("noscope");
    let noscope = RuntimeReport::from_cost(
        "noscope (oracle)",
        engine.clock().breakdown().since(&before),
        ns_calls,
    );

    // BlazeIt: Algorithm 1 picks query rewriting or control variates.
    let result = session
        .query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%",
        )
        .expect("blazeit");
    let blazeit = RuntimeReport::from_cost("blazeit", result.cost, result.output.detection_calls());

    println!(
        "exact FCOUNT = {naive_value:.3}, BlazeIt estimate = {:.3}",
        result.output.aggregate_value().unwrap_or(f64::NAN)
    );
    println!("{}", format_speedup_table(&[naive, noscope, blazeit]));

    println!("== transit interaction: frames with >= 1 bus and >= 2 cars ==");
    let scrub = session
        .query(
            "SELECT timestamp FROM taipei GROUP BY timestamp \
             HAVING SUM(class='bus')>=1 AND SUM(class='car')>=2 LIMIT 10 GAP 300",
        )
        .expect("scrub");
    if let QueryOutput::Frames { frames, detection_calls } = &scrub.output {
        println!(
            "found {} congestion moments with {} detector calls ({:.1} simulated s, vs {} frames total)",
            frames.len(),
            detection_calls,
            scrub.runtime_secs(),
            engine.video().len()
        );
        for &f in frames {
            println!("  frame {f} at t = {:.1} s", engine.video().timestamp(f));
        }
    }
}
