//! Ornithology (Section 2 of the paper): a webcam watches a bird feeder with different
//! feed on the left and right side; the scientist counts visits to each side and then
//! pulls out the red birds as a proxy for species.
//!
//! This example shows how to run BlazeIt over a *custom* video (not one of the Table 3
//! presets) by generating the three days yourself, building the labeled set, and
//! registering the stream in a catalog.
//!
//! Run with `cargo run --release --example ornithology`.

use blazeit::prelude::*;
use blazeit::videostore::datasets::bird_feeder_config;
use std::sync::Arc;

fn main() {
    let frames = 6_000;
    let seed = 0xB19D;

    // Three days of the feeder camera: train, held-out, and the day we analyze.
    let train = Video::generate(bird_feeder_config(frames, seed, DAY_TRAIN)).expect("train day");
    let heldout =
        Video::generate(bird_feeder_config(frames, seed, DAY_HELDOUT)).expect("held-out day");
    let test = Video::generate(bird_feeder_config(frames, seed, DAY_TEST)).expect("test day");

    let config = BlazeItConfig::default();
    let labeled = Arc::new(LabeledSet::build(train, heldout, &config).expect("labeled set"));
    let catalog = Catalog::new();
    catalog.register(test, labeled, config).expect("register custom video");
    let session = catalog.session();

    // How busy is the feeder overall?
    let overall = session
        .query("SELECT FCOUNT(*) FROM bird-feeder WHERE class = 'bird' ERROR WITHIN 0.1 AT CONFIDENCE 95%")
        .expect("overall count");
    println!(
        "average birds per frame: {:.3} ({:.1} simulated GPU-seconds)",
        overall.output.aggregate_value().unwrap_or(f64::NAN),
        overall.runtime_secs()
    );

    // Left vs right side of the feeder: spatial predicates over the mask.
    for (side, predicate) in [("left", "xmax(mask) < 640"), ("right", "xmin(mask) >= 640")] {
        let sql = format!("SELECT * FROM bird-feeder WHERE class = 'bird' AND {predicate}");
        let result = session.query(&sql).expect("side query");
        if let QueryOutput::Rows { rows, detection_calls } = &result.output {
            let tracks: std::collections::BTreeSet<u64> = rows.iter().map(|r| r.trackid).collect();
            println!(
                "{side:>5} side: {} visits ({} rows, {} detector calls)",
                tracks.len(),
                rows.len(),
                detection_calls
            );
        }
    }

    // Red birds as a species proxy (content-based selection).
    let red = session
        .query("SELECT * FROM bird-feeder WHERE class = 'bird' AND redness(content) >= 10")
        .expect("red birds");
    if let QueryOutput::Rows { rows, .. } = &red.output {
        let tracks: std::collections::BTreeSet<u64> = rows.iter().map(|r| r.trackid).collect();
        println!("red-bird visits: {}", tracks.len());
    }
}
