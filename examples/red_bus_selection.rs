//! Content-based selection (Figure 3c of the paper): find every red tour bus that is on
//! screen for at least half a second, and show which inferred filters made it cheap —
//! using the prepare → inspect → override → run API.
//!
//! Run with `cargo run --release --example red_bus_selection`.

use blazeit::core::select::{ground_truth_tracks, red_bus_query};
use blazeit::prelude::*;

fn main() {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 9_000).expect("register");
    let session = catalog.session();
    let sql = red_bus_query("taipei", 10.0, 20_000.0, 15);
    println!("query: {sql}\n");

    // EXPLAIN shows the optimizer's plan before anything is paid for.
    let prepared = session.prepare(&sql).expect("prepare");
    println!("{}\n", prepared.explain());

    // Run with all inferred filters (the default plan)...
    let before = catalog.clock().breakdown();
    let filtered = prepared.run().expect("filtered plan");
    let filtered_cost = catalog.clock().breakdown().since(&before);

    // ...then override the plan to disable every filter: the naive scan through the
    // very same executor.
    let before = catalog.clock().breakdown();
    let naive = session
        .prepare(&sql)
        .expect("prepare")
        .with_options(SelectionOptions::none())
        .run()
        .expect("naive plan");
    let naive_cost = catalog.clock().breakdown().since(&before);

    // Tracker ids are scan-local, so result sets are compared through the scene's
    // ground-truth track identities.
    let ctx = catalog.context("taipei").expect("registered");
    let naive_tracks = ground_truth_tracks(&ctx, naive.output.rows().unwrap_or(&[]));
    let filtered_tracks = ground_truth_tracks(&ctx, filtered.output.rows().unwrap_or(&[]));
    let found = naive_tracks.iter().filter(|t| filtered_tracks.contains(t)).count();

    println!(
        "BlazeIt:  {:>8.1} simulated s, {:>6} detector calls, {} red-bus tracks",
        filtered_cost.total() - filtered_cost.decode,
        filtered.output.detection_calls(),
        filtered_tracks.len()
    );
    println!(
        "naive:    {:>8.1} simulated s, {:>6} detector calls, {} red-bus tracks",
        naive_cost.total() - naive_cost.decode,
        naive.output.detection_calls(),
        naive_tracks.len()
    );
    let speedup = (naive_cost.total() - naive_cost.decode)
        / (filtered_cost.total() - filtered_cost.decode).max(1e-9);
    println!(
        "speedup: {speedup:.1}x; recall vs naive result set: {}/{} tracks",
        found,
        naive_tracks.len()
    );
}
