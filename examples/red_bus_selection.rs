//! Content-based selection (Figure 3c of the paper): find every red tour bus that is on
//! screen for at least half a second, and show which inferred filters made it cheap.
//!
//! Run with `cargo run --release --example red_bus_selection`.

use blazeit::core::select::{execute_with_options, plan_filters, red_bus_query, SelectionOptions};
use blazeit::frameql::query::analyze;
use blazeit::prelude::*;

fn main() {
    let engine = BlazeIt::for_preset(DatasetPreset::Taipei, 9_000).expect("engine");
    let sql = red_bus_query("taipei", 10.0, 20_000.0, 15);
    println!("query: {sql}\n");

    let query = parse_query(&sql).expect("parse");
    let info = analyze(&query, engine.udfs()).expect("analyze");

    // Show the filter plan BlazeIt infers from the query and the labeled set.
    let plan = plan_filters(&engine, &info, &SelectionOptions::default()).expect("plan");
    println!("inferred filter plan: {plan:#?}\n");

    // Run with all filters, then with none (the naive plan), and compare.
    let before = engine.clock().breakdown();
    let filtered = execute_with_options(&engine, &query, &info, &SelectionOptions::default())
        .expect("filtered plan");
    let filtered_cost = engine.clock().breakdown().since(&before);

    let before = engine.clock().breakdown();
    let naive = execute_with_options(&engine, &query, &info, &SelectionOptions::none())
        .expect("naive plan");
    let naive_cost = engine.clock().breakdown().since(&before);

    let naive_tracks = naive.track_ids();
    let filtered_tracks = filtered.track_ids();
    let found = naive_tracks.iter().filter(|t| filtered_tracks.contains(t)).count();

    println!(
        "BlazeIt:  {:>8.1} simulated s, {:>6} detector calls, {} red-bus tracks",
        filtered_cost.total() - filtered_cost.decode,
        filtered.detection_calls,
        filtered_tracks.len()
    );
    println!(
        "naive:    {:>8.1} simulated s, {:>6} detector calls, {} red-bus tracks",
        naive_cost.total() - naive_cost.decode,
        naive.detection_calls,
        naive_tracks.len()
    );
    let speedup = (naive_cost.total() - naive_cost.decode)
        / (filtered_cost.total() - filtered_cost.decode).max(1e-9);
    println!(
        "speedup: {speedup:.1}x; recall vs naive result set: {}/{} tracks",
        found,
        naive_tracks.len()
    );
}
