//! Minimal in-repo replacement for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! vendored crate re-implements the small slice of `rand`'s public API the
//! workspace uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed, statistically solid for the
//! simulation and sampling workloads in this repository (it is *not* a
//! cryptographic RNG, and its streams differ from the real `rand::StdRng`).

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Types that can construct themselves from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling support for the value types used by this workspace.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &core::ops::Range<Self>) -> Self;
}

/// Types with a "standard" distribution (`Rng::gen`): floats in `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The user-facing random-number trait: core output plus convenience methods.
pub trait Rng {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value from the type's standard distribution (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform sample in `[range.start, range.end)`. Panics on an empty range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[inline]
fn uniform_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn uniform_f32<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // 24 high bits → [0, 1) with full single precision.
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        uniform_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        uniform_f32(rng)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &core::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + uniform_f64(rng) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &core::ops::Range<f32>) -> f32 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + uniform_f32(rng) * (range.end - range.start)
    }
}

/// Unbiased-enough integer sampling: widening-multiply range reduction
/// (Lemire's method without the rejection step; bias is < 2^-64 per draw).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &core::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                range.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: usize = rng.gen_range(5..8);
            assert!((5..8).contains(&y));
            let z: f32 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean drifted: {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "gen_bool(0.25) hit rate {frac}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
