//! Sequence-related random operations ([`SliceRandom::shuffle`]).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50-element shuffle left the slice sorted");
    }
}
