//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! Nothing in this workspace actually serializes values — the derives exist so
//! type definitions can keep the standard `#[derive(Serialize, Deserialize)]`
//! annotations (and `#[serde(..)]` field attributes) without the real `serde`
//! dependency, which is unavailable in the no-network build environment. Each
//! derive expands to an empty token stream; the `attributes(serde)` declaration
//! makes the helper attributes legal.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(..)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(..)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
