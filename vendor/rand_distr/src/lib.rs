//! Minimal in-repo replacement for the `rand_distr` crate.
//!
//! Provides the three distributions the scene simulator draws from —
//! [`Exp`], [`Normal`], and [`Poisson`] — behind the same `new(..) ->
//! Result` / [`Distribution::sample`] API as the real crate.

use rand::Rng;

/// Error returned when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Types that can be sampled with an [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// The exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Exp, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0) because u ∈ [0, 1).
        -(1.0 - rng.gen::<f64>()).ln() / self.lambda
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be non-negative and finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error)
        }
    }
}

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller; one fresh pair per draw, second value discarded (simplicity
    // over throughput — the scene simulator draws a few thousand per day).
    let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The Poisson distribution with mean `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Poisson, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Poisson { lambda })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction, adequate for the
            // large-mean arrival batches of the scene simulator.
            let z = standard_normal(rng);
            (self.lambda + self.lambda.sqrt() * z + 0.5).floor().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Normal::new(3.0, 0.0).is_ok());
    }

    #[test]
    fn sample_means_match_parameters() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let exp = Exp::new(0.25).unwrap();
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "Exp(0.25) mean {mean}");

        let norm = Normal::new(2.0, 3.0).unwrap();
        let mean: f64 = (0..n).map(|_| norm.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "Normal(2,3) mean {mean}");

        for lambda in [0.5, 5.0, 80.0] {
            let pois = Poisson::new(lambda).unwrap();
            let mean: f64 = (0..n).map(|_| pois.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "Poisson({lambda}) mean {mean}"
            );
        }
    }
}
