//! Minimal in-repo replacement for `criterion`.
//!
//! Provides [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark is warmed
//! up briefly, then timed adaptively until a wall-clock budget is reached; the
//! mean time per iteration is printed. No statistics, plots or baselines — just
//! enough to run `cargo bench` offline and compare numbers by eye.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(800) }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints the mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher =
            Bencher { iterations: 0, elapsed: Duration::ZERO, budget: self.measurement_time };
        f(&mut bencher);
        let per_iter = if bencher.iterations > 0 {
            bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64
        } else {
            f64::NAN
        };
        println!("{name:<40} {:>12.1} ns/iter ({} iterations)", per_iter, bencher.iterations);
        self
    }
}

/// Timer handed to the closure passed to [`Criterion::bench_function`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly (after a short warm-up) until the time budget is
    /// spent, accumulating timing for the final report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed calls so lazy initialization is excluded.
        for _ in 0..3 {
            black_box(f());
        }
        let started = Instant::now();
        let mut iterations = 0u64;
        while started.elapsed() < self.budget || iterations < 10 {
            black_box(f());
            iterations += 1;
            if iterations >= 10_000_000 {
                break;
            }
        }
        self.elapsed = started.elapsed();
        self.iterations = iterations;
    }
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion { measurement_time: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 10);
    }
}
