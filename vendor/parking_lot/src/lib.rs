//! Minimal in-repo replacement for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s panic-free `lock()` API
//! (poisoning is ignored, matching `parking_lot` semantics).

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (as `parking_lot` does).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn concurrent_increments() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
