//! Facade re-exporting the no-op [`serde_derive`] macros.
//!
//! See `vendor/serde_derive` for why these are no-ops: the workspace annotates
//! types for serialization but never serializes, and the build environment has
//! no registry access for the real `serde`.

pub use serde_derive::{Deserialize, Serialize};
