//! Minimal in-repo replacement for `proptest`.
//!
//! Implements the subset of the proptest API this repository's property tests
//! use: the [`proptest!`] macro (each test body is run for a fixed number of
//! seeded random cases), `prop_assert!` / `prop_assert_eq!`, the [`Strategy`]
//! trait with `prop_map`, numeric-range and tuple strategies, string-ish
//! strategies from `&str` patterns, `prop::collection::vec` and
//! `prop::sample::select`. No shrinking: a failing case panics with the normal
//! assertion message (the case is deterministic per test name + index, so
//! failures reproduce exactly).

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Number of random cases each `proptest!` test executes.
pub const CASES: u64 = 64;

/// The RNG driving case generation. Deterministic per `(test name, case)`.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for one test case.
    pub fn deterministic(test_name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` strategies stand in for proptest's regex strategies: the pattern's
/// `{lo,hi}` repetition suffix (if any) bounds the length of a random printable
/// ASCII string. That covers the fuzzing use ("any short string"), which is the
/// only way this repository uses string strategies.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition_bounds(self).unwrap_or((0, 32));
        let len = if hi > lo { rng.rng().gen_range(lo..hi + 1) } else { lo };
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with a sprinkle of query-ish characters
                // so the parser fuzz test exercises interesting prefixes.
                let roll: u32 = rng.rng().gen_range(0..100u32);
                if roll < 80 {
                    char::from(rng.rng().gen_range(0x20u8..0x7F))
                } else {
                    const QUERYISH: &[char] =
                        &['S', 'E', 'L', 'C', 'T', '*', '(', ')', '\'', '%', '=', '>', '_'];
                    QUERYISH[rng.rng().gen_range(0..QUERYISH.len())]
                }
            })
            .collect()
    }
}

fn parse_repetition_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern[open..].find('}')? + open;
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Modules mirroring `proptest::collection` and `proptest::sample`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A number-of-elements specification: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end.saturating_sub(1) }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing `Vec`s of `element` values with a length in
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                rng.rng().gen_range(self.size.lo..self.size.hi + 1)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// See [`collection`].
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy choosing uniformly among fixed options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Creates a strategy that picks one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.rng().gen_range(0..self.options.len())].clone()
        }
    }
}

/// The usual glob import target, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};

    /// Mirrors the `prop` module of the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body (no shrinking; panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` running `CASES` seeded random cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let strategy = ($($strategy,)+);
            for case in 0..$crate::CASES {
                let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps_compose(x in 0u64..100, y in (0.0f64..1.0).prop_map(|v| v * 2.0)) {
            prop_assert!(x < 100);
            prop_assert!((0.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_select_work(
            v in prop::collection::vec(0usize..5, 2..10),
            s in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn string_patterns_bound_length(s in "\\PC{0,120}") {
            prop_assert!(s.chars().count() <= 120);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::Strategy::generate(
            &(0u64..1_000_000),
            &mut crate::TestRng::deterministic("t", 3),
        );
        let b = crate::Strategy::generate(
            &(0u64..1_000_000),
            &mut crate::TestRng::deterministic("t", 3),
        );
        assert_eq!(a, b);
    }
}
