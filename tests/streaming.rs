//! Integration tests for the streaming subsystem: incremental ingestion,
//! bit-identical live score indexes, continuous-query subscriptions, drift
//! detection with atomic model refresh, and store consistency.

use blazeit::core::stream::DEFAULT_TICK_FRAMES;
use blazeit::prelude::*;
use blazeit::videostore::scene::ScenePhase;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const CAR: ObjectClass = ObjectClass::Car;

/// Heads the car-FCOUNT subscription plans on a given context.
fn car_heads(ctx: &VideoContext) -> Vec<(ObjectClass, usize)> {
    vec![(CAR, ctx.default_max_count(CAR, 1))]
}

/// A stable calm/busy day: taipei's scene with the day-to-day and diurnal rate
/// modulation switched off (so only the injected phase boundary shifts the
/// distribution), and a busy phase with 4x the car traffic.
fn drifting_capacity(calm_frames: u64, busy_frames: u64) -> Video {
    let preset = DatasetPreset::Taipei;
    let mut config = preset.video_config_with_frames(DAY_TEST, calm_frames + busy_frames);
    config.scene.day_variation = 0.0;
    config.scene.diurnal_amplitude = 0.0;
    let calm = config.scene.clone();
    let mut busy = calm.clone();
    for profile in &mut busy.classes {
        if profile.class == CAR {
            profile.mean_concurrent *= 8.0;
        }
    }
    Video::generate_phased(
        config,
        &[
            ScenePhase { config: calm, num_frames: calm_frames },
            ScenePhase { config: busy, num_frames: busy_frames },
        ],
    )
    .unwrap()
}

/// Labeled days matching [`drifting_capacity`]'s calm statistics.
fn stable_labeled(frames_per_day: u64) -> (Arc<LabeledSet>, BlazeItConfig) {
    let preset = DatasetPreset::Taipei;
    let config = BlazeItConfig::for_preset(preset);
    let mut train_cfg = preset.video_config_with_frames(DAY_TRAIN, frames_per_day);
    train_cfg.scene.day_variation = 0.0;
    train_cfg.scene.diurnal_amplitude = 0.0;
    let mut heldout_cfg = train_cfg.for_day(DAY_HELDOUT);
    heldout_cfg.num_frames = frames_per_day;
    let train = Video::generate(train_cfg).unwrap();
    let heldout = Video::generate(heldout_cfg).unwrap();
    (Arc::new(LabeledSet::build(train, heldout, &config).unwrap()), config)
}

// -------------------------------------------------------------------------------
// Acceptance: a subscribed FCOUNT over a live stream.
// -------------------------------------------------------------------------------

#[test]
fn subscribed_fcount_over_live_stream_is_incremental_and_bit_identical() {
    let frames = 2_400u64;
    let initial = 800u64;
    let catalog = Catalog::new();
    catalog
        .register_stream_preset(DatasetPreset::Taipei, frames, initial, DriftConfig::disabled())
        .unwrap();
    let session = catalog.session();
    let mut sub = session
        .subscribe(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' \
             WINDOW 600 FRAMES EVERY 250 FRAMES",
        )
        .unwrap();
    assert_eq!(sub.every(), 250);
    assert_eq!(sub.window(), Some(600));

    let ctx = catalog.context("taipei").unwrap();
    let heads = car_heads(&ctx);
    let heldout_frames = ctx.labeled().heldout().len() as u64;
    let cost = ctx.config().cost;
    // Subscribing trains the specialized NN and scores the initial prefix plus
    // the held-out calibration day — exactly once.
    let after_subscribe = catalog.clock().breakdown();
    let expected_initial = (initial + heldout_frames) as f64 * cost.specialized_inference_cost();
    assert!(
        (after_subscribe.specialized - expected_initial).abs() < 1e-9,
        "subscribe scored {} specialized-seconds, expected {expected_initial}",
        after_subscribe.specialized
    );

    let stream = catalog.stream("taipei").unwrap();
    assert_eq!(stream.ingested(), initial);
    assert_eq!(stream.capacity(), frames);

    let mut updates: Vec<StreamUpdate> = Vec::new();
    let mut charged = after_subscribe.specialized;
    while !stream.is_exhausted() {
        let before = catalog.clock().breakdown().specialized;
        let report = stream.advance(300).unwrap();
        let after = catalog.clock().breakdown().specialized;
        // Incremental indexing charges exactly the appended frames — zero
        // redundant inference for already-scored frames.
        let expected = report.appended() as f64 * cost.specialized_inference_cost();
        assert!(
            (after - before - expected).abs() < 1e-9,
            "advance of {} frames charged {} specialized-seconds",
            report.appended(),
            after - before
        );
        assert_eq!(report.indexes_extended, 1);
        assert!(report.refreshes.is_empty(), "drift is disabled");
        charged = after;

        let before_poll = catalog.clock().breakdown();
        let batch = sub.poll().unwrap();
        let after_poll = catalog.clock().breakdown();
        // Ticks answer from the incremental index: zero detection, zero
        // specialized inference.
        assert_eq!(after_poll.specialized, before_poll.specialized, "a poll must not score");
        assert_eq!(after_poll.detection, before_poll.detection, "a poll must not detect");
        updates.extend(batch);
    }
    // Total specialized inference over the stream's life: every frame exactly
    // once, plus the one-time held-out calibration.
    let expected_total = (frames + heldout_frames) as f64 * cost.specialized_inference_cost();
    assert!((charged - expected_total).abs() < 1e-9, "total {charged} vs {expected_total}");

    // One update per EVERY boundary crossed after subscription.
    let expected_ticks: Vec<u64> =
        (1..=frames / 250).map(|k| k * 250).filter(|&t| t > initial).collect();
    assert_eq!(updates.iter().map(|u| u.tick).collect::<Vec<_>>(), expected_ticks);
    for update in &updates {
        assert_eq!(update.range.1 - update.range.0, 600, "window width");
        assert_eq!(update.generation, 0);
        assert!(update.value.is_finite() && update.standard_error.is_finite());
        assert!(update.standard_error > 0.0);
        assert!(update.ci.0 <= update.value && update.value <= update.ci.1);
        // The windowed car FCOUNT of taipei should be in a sane range.
        assert!(update.value > 0.0 && update.value < 10.0, "estimate {}", update.value);
    }

    // The incremental index is bit-identical to a cold re-score of the same
    // frames: a fresh catalog over the fully generated day (the stream's
    // capacity *is* the preset's 2400-frame test day) trains the same network
    // (same labeled set, same seeds) and scores from scratch.
    let nn_stream = ctx.specialized_for(&heads).unwrap();
    let index_stream = ctx.score_index(&nn_stream).unwrap();
    let cold = Catalog::new();
    cold.register_preset(DatasetPreset::Taipei, frames).unwrap();
    let cold_ctx = cold.context("taipei").unwrap();
    let nn_cold = cold_ctx.specialized_for(&heads).unwrap();
    assert_eq!(
        nn_stream.weights_fingerprint(),
        nn_cold.weights_fingerprint(),
        "deterministic training must reproduce the same network"
    );
    let index_cold = cold_ctx.score_index(&nn_cold).unwrap();
    assert_eq!(index_stream.num_frames(), frames as usize);
    assert_eq!(index_stream.probs().len(), index_cold.probs().len());
    for (a, b) in index_stream.probs().iter().zip(index_cold.probs()) {
        assert_eq!(a.to_bits(), b.to_bits(), "incremental and cold scores diverge");
    }

    // And the per-tick estimates agree with what the cold index implies: the
    // last update's window mean must match a direct computation over the cold
    // scores plus the shared calibration residual.
    let last = updates.last().unwrap();
    let head = nn_cold.head_index(CAR).unwrap();
    let (lo, hi) = last.range;
    let pred: f64 =
        (lo as usize..hi as usize).map(|f| index_cold.expected_count(f, head)).sum::<f64>()
            / (hi - lo) as f64;
    let heldout_scores = cold_ctx.heldout_score_index(&nn_cold).unwrap();
    let truth = cold_ctx.labeled().heldout().class_counts(CAR);
    let mean_resid: f64 = (0..truth.len())
        .map(|i| truth[i] as f64 - heldout_scores.expected_count(i, head))
        .sum::<f64>()
        / truth.len() as f64;
    assert!(
        (last.value - (pred + mean_resid)).abs() < 1e-12,
        "tick estimate {} vs cold recomputation {}",
        last.value,
        pred + mean_resid
    );
}

// -------------------------------------------------------------------------------
// Subscription surface errors and defaults.
// -------------------------------------------------------------------------------

#[test]
fn subscribe_rejects_unsupported_shapes_and_one_shot_rejects_stream_clauses() {
    let catalog = Catalog::new();
    catalog
        .register_stream_preset(DatasetPreset::Taipei, 900, 300, DriftConfig::disabled())
        .unwrap();
    catalog.register_preset(DatasetPreset::Amsterdam, 600).unwrap();
    let session = catalog.session();

    // One-shot execution of continuous clauses is rejected with a pointer to
    // subscribe...
    let err = session
        .query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' WINDOW 100 FRAMES")
        .unwrap_err();
    assert!(matches!(err, BlazeItError::Unsupported(ref m) if m.contains("subscribe")), "{err}");
    // ...but EXPLAIN still renders (free), including the stream state.
    let explained = session
        .query("EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' WINDOW 100 FRAMES")
        .unwrap();
    let rendered = explained.output.explain_plan().unwrap().to_string();
    assert!(rendered.contains("stream:   ingested 300/900 frames"), "{rendered}");
    assert!(rendered.contains("refresh idle"), "{rendered}");
    assert_eq!(catalog.clock().total(), 0.0, "EXPLAIN must stay free on streams");

    // Subscribing a non-stream registration fails.
    let err = session.subscribe("SELECT FCOUNT(*) FROM amsterdam WHERE class = 'car'").unwrap_err();
    assert!(
        matches!(err, BlazeItError::Unsupported(ref m) if m.contains("register_stream")),
        "{err}"
    );
    // Multi-video and non-aggregate shapes fail.
    assert!(session.subscribe("SELECT FCOUNT(*) FROM * WHERE class = 'car'").is_err());
    assert!(session.subscribe("SELECT * FROM taipei WHERE class = 'car'").is_err());
    assert!(session
        .subscribe("SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'")
        .is_err());
    assert!(session.subscribe("SELECT FCOUNT(*) FROM taipei").is_err(), "needs a class");
    // Driving a non-stream video fails too.
    assert!(catalog.stream("amsterdam").is_err());

    // Defaults: EVERY falls back to WINDOW, then to DEFAULT_TICK_FRAMES.
    let sub = session
        .subscribe("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' WINDOW 200 FRAMES")
        .unwrap();
    assert_eq!(sub.every(), 200);
    let sub = session.subscribe("SELECT FCOUNT(*) FROM taipei WHERE class = 'car'").unwrap();
    assert_eq!(sub.every(), DEFAULT_TICK_FRAMES);
    assert_eq!(sub.window(), None);
}

// -------------------------------------------------------------------------------
// Drift: injected distribution shift triggers exactly one atomic refresh.
// -------------------------------------------------------------------------------

fn drift_config() -> DriftConfig {
    // Calibrated against the deterministic fixture: pre-drift checks stay at or
    // below 0.25, while the first fully-busy window scores ~0.35.
    DriftConfig {
        window: 600,
        check_every: 150,
        threshold: 0.30,
        retrain_stride: 3,
        min_history: 600,
    }
}

#[test]
fn injected_drift_triggers_exactly_one_background_retrain_with_atomic_swap() {
    let (labeled, config) = stable_labeled(1_200);
    let capacity = drifting_capacity(1_200, 1_200);
    let catalog = Catalog::new();
    catalog.register_stream(capacity, labeled, config, 600, drift_config()).unwrap();
    let session = catalog.session();
    let mut sub = session
        .subscribe(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' \
             WINDOW 450 FRAMES EVERY 150 FRAMES",
        )
        .unwrap();
    let ctx = catalog.context("taipei").unwrap();
    let stream = catalog.stream("taipei").unwrap();

    let mut updates: Vec<StreamUpdate> = Vec::new();
    let mut refreshes: Vec<RefreshReport> = Vec::new();
    while !stream.is_exhausted() {
        let report = stream.advance(150).unwrap();
        for r in &report.refreshes {
            eprintln!(
                "refresh at {} frames: drift {:.3} -> generation {}",
                report.to, r.drift_score, r.new_generation
            );
        }
        refreshes.extend(report.refreshes.clone());
        updates.extend(sub.poll().unwrap());
        let status = ctx.stream_status(&car_heads(&ctx)).unwrap();
        eprintln!(
            "ingested {}: drift {:?} refresh {:?}",
            status.ingested, status.drift_score, status.refresh
        );
    }

    // Exactly one retrain, triggered by the injected shift.
    assert_eq!(refreshes.len(), 1, "expected exactly one drift refresh: {refreshes:?}");
    assert_eq!(refreshes[0].new_generation, 1);
    assert!(refreshes[0].drift_score > drift_config().threshold);
    assert!(refreshes[0].labeled_frames > 0);

    // The swap is atomic and monotone: generations never decrease, and each
    // generation maps to exactly one model fingerprint.
    assert!(updates.windows(2).all(|w| w[0].generation <= w[1].generation));
    let fingerprints = |generation: u64| {
        let mut fps: Vec<u64> = updates
            .iter()
            .filter(|u| u.generation == generation)
            .map(|u| u.model_fingerprint)
            .collect();
        fps.dedup();
        fps
    };
    assert_eq!(fingerprints(0).len(), 1);
    assert_eq!(fingerprints(1).len(), 1);
    assert_ne!(fingerprints(0)[0], fingerprints(1)[0], "the refresh swapped the weights");
    assert!(updates.iter().all(|u| u.generation <= 1));

    // The refreshed model actually tracks the busy regime: post-swap windowed
    // estimates see the heavier traffic.
    let pre = updates.iter().find(|u| u.generation == 0).unwrap().value;
    let post = updates.iter().rfind(|u| u.generation == 1).unwrap().value;
    assert!(post > pre, "refreshed estimates should reflect the busier regime: {pre} -> {post}");

    // EXPLAIN renders the final stream state: fully ingested, generation 1,
    // refresh completed.
    let rendered = session
        .query("EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1")
        .unwrap()
        .output
        .explain_plan()
        .unwrap()
        .to_string();
    assert!(rendered.contains("ingested 2400/2400 frames"), "{rendered}");
    assert!(rendered.contains("generation 1"), "{rendered}");
    assert!(rendered.contains("refresh completed (generation 1)"), "{rendered}");
    let status = ctx.stream_status(&car_heads(&ctx)).unwrap();
    assert_eq!(status.refresh, RefreshState::Completed { generation: 1 });
    assert_eq!(status.index_frames, Some(2_400));
}

// The old `drift_refresh_never_races_an_in_flight_subscription` test lived
// here: it drove ingestion and a polling subscription on two OS threads and
// asserted no tick mixed model generations — but it only ever witnessed the
// one schedule the OS happened to produce. It is superseded by the exhaustive
// model-checked version in `crates/model/tests/stream_protocol.rs`, which
// explores *every* interleaving of advance / poll / retrain-publication up to
// the preemption bound (plus a seeded-race canary proving the checker still
// catches a torn generation swap). The deterministic engine-level properties
// the old test also touched (exactly one refresh, contiguous ticks,
// generation↔fingerprint coherence) remain covered by
// `drift_detection_triggers_refresh_and_improves_accuracy` above.

// -------------------------------------------------------------------------------
// Store consistency under streaming.
// -------------------------------------------------------------------------------

#[test]
fn streaming_write_behind_keeps_disk_consistent_with_the_grown_video() {
    let dir = std::env::temp_dir().join(format!("blazeit-stream-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let frames = 1_200u64;
    {
        let catalog = Catalog::with_index_store(&dir).unwrap();
        catalog
            .register_stream_preset(DatasetPreset::Taipei, frames, 400, DriftConfig::disabled())
            .unwrap();
        let session = catalog.session();
        let mut sub = session
            .subscribe("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' EVERY 200 FRAMES")
            .unwrap();
        let stream = catalog.stream("taipei").unwrap();
        while !stream.is_exhausted() {
            stream.advance(200).unwrap();
            sub.poll().unwrap();
        }
        // Exactly two score artifacts remain on disk: the held-out calibration
        // index and the *current* live index — every superseded length was
        // retired as the stream grew.
        let scores_dir = dir.join("taipei").join("scores");
        let artifacts: Vec<_> = std::fs::read_dir(&scores_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "bzs"))
            .collect();
        assert_eq!(artifacts.len(), 2, "expected heldout + one live artifact, found {artifacts:?}");
    }
    // A fresh catalog over the fully grown video answers from the stream's
    // persisted artifacts: zero training, zero specialized inference.
    let cold = Catalog::with_index_store(&dir).unwrap();
    cold.register_preset(DatasetPreset::Taipei, frames).unwrap();
    let result = cold
        .session()
        .query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%",
        )
        .unwrap();
    assert!(result.output.aggregate_value().is_some());
    let sim = cold.clock().breakdown();
    assert_eq!(sim.training, 0.0, "the stream persisted its trained network");
    assert_eq!(sim.specialized, 0.0, "the stream persisted its grown score index");
    // The labeled-set annotations were persisted too: registration re-used them.
    assert_eq!(cold.context("taipei").unwrap().labeled().annotation_cost_secs(), 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------------
// Property: N appends + incremental scoring == cold re-score of the grown video.
// -------------------------------------------------------------------------------

struct EquivalenceFixture {
    labeled: Arc<LabeledSet>,
    config: BlazeItConfig,
    capacity: Video,
    /// Separate index stores for the streaming and cold catalogs: each holds
    /// the (deterministically identical) trained network so the 64 proptest
    /// cases load it disk-warm instead of retraining, while score artifacts
    /// stay segregated — the cold catalog must never be able to *load* the
    /// stream's incremental index it is supposed to independently reproduce.
    stream_store: std::path::PathBuf,
    cold_store: std::path::PathBuf,
}

/// Shared fixture: one labeled set + capacity video, built once for all cases.
fn equivalence_fixture() -> &'static EquivalenceFixture {
    static FIXTURE: OnceLock<EquivalenceFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let preset = DatasetPreset::Taipei;
        let frames = 800u64;
        let config = BlazeItConfig::for_preset(preset);
        let train = preset.generate_with_frames(DAY_TRAIN, frames).unwrap();
        let heldout = preset.generate_with_frames(DAY_HELDOUT, frames).unwrap();
        let labeled = Arc::new(LabeledSet::build(train, heldout, &config).unwrap());
        let capacity = preset.generate_with_frames(DAY_TEST, frames).unwrap();
        let base = std::env::temp_dir().join(format!("blazeit-stream-prop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        EquivalenceFixture {
            labeled,
            config,
            capacity,
            stream_store: base.join("stream"),
            cold_store: base.join("cold"),
        }
    })
}

proptest! {
    #[test]
    fn incremental_appends_are_bit_identical_to_cold_rescoring(
        initial in 100u64..350,
        appends in prop::collection::vec(30u64..250, 1..4),
    ) {
        let EquivalenceFixture { labeled, config, capacity, stream_store, cold_store } =
            equivalence_fixture();
        let catalog = Catalog::with_index_store(stream_store).unwrap();
        catalog
            .register_stream(
                capacity.clone(),
                Arc::clone(labeled),
                config.clone(),
                initial,
                DriftConfig::disabled(),
            )
            .unwrap();
        let ctx = catalog.context("taipei").unwrap();
        let heads = car_heads(&ctx);
        let nn = ctx.specialized_for(&heads).unwrap();
        let _ = ctx.score_index(&nn).unwrap();
        let stream = catalog.stream("taipei").unwrap();
        for append in &appends {
            stream.advance(*append).unwrap();
        }
        let grown = stream.ingested();
        prop_assert!(grown >= initial && grown <= capacity.len());
        let incremental = ctx.score_index(&nn).unwrap();
        prop_assert_eq!(incremental.num_frames() as u64, grown);

        // Cold: register the grown prefix as an ordinary fixed video and score
        // it from scratch with an independently trained (but deterministic,
        // hence bit-identical) network. Dropping the cold store's persisted
        // scores keeps the re-score genuinely cold across cases; the trained
        // network alone is carried over (loading it is bit-exact).
        let _ = std::fs::remove_dir_all(cold_store.join("taipei").join("scores"));
        let cold = Catalog::with_index_store(cold_store).unwrap();
        cold.register(capacity.prefix(grown).unwrap(), Arc::clone(labeled), config.clone())
            .unwrap();
        let cold_ctx = cold.context("taipei").unwrap();
        let cold_nn = cold_ctx.specialized_for(&heads).unwrap();
        prop_assert_eq!(nn.weights_fingerprint(), cold_nn.weights_fingerprint());
        let cold_index = cold_ctx.score_index(&cold_nn).unwrap();
        prop_assert_eq!(cold_index.num_frames() as u64, grown);
        for (a, b) in incremental.probs().iter().zip(cold_index.probs()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // And the declarative aggregate answer over the grown stream is
        // exactly the cold catalog's answer (same plan, same seeds, same
        // scores).
        let sql = "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' \
                   ERROR WITHIN 0.15 AT CONFIDENCE 95%";
        let live = catalog.session().query(sql).unwrap();
        let cold_result = cold.session().query(sql).unwrap();
        prop_assert_eq!(live.output.aggregate_value(), cold_result.output.aggregate_value());
        prop_assert_eq!(live.output.detection_calls(), cold_result.output.detection_calls());
    }
}
