//! Cross-video FrameQL: fan-out aggregation, global-limit scrubbing, source-tagged
//! selection, and the statistical honesty of the merge math.
//!
//! The merge-math property test amortizes catalog construction: the catalogs are
//! built once and every proptest case re-queries them (repeat queries answer from
//! the per-video caches, so 64 randomized cases stay cheap).

use blazeit::prelude::*;
use proptest::prelude::*;

/// The three car-bearing Table 3 streams the cross-video tests span.
const PRESETS: [DatasetPreset; 3] =
    [DatasetPreset::Taipei, DatasetPreset::NightStreet, DatasetPreset::Amsterdam];

fn car_catalog(frames: u64) -> Catalog {
    let catalog = Catalog::new();
    for preset in PRESETS {
        catalog.register_preset(preset, frames).expect("register preset");
    }
    catalog
}

// ---------------------------------------------------------------------------------
// Merge math: catalog-wide FCOUNT == sum of per-video runs, CI never wider.
// ---------------------------------------------------------------------------------

proptest! {
    #[test]
    fn catalog_fcount_is_the_sum_of_per_video_runs_with_a_no_wider_ci(
        error in 0.08f64..0.35,
        confidence in prop::sample::select(vec![90u32, 95, 99]),
        pair in prop::sample::select(vec![(0usize, 1usize), (0, 2), (1, 2), (0, 0)]),
    ) {
        // Built once, reused by every case (`OnceLock` holds them across the 64
        // iterations of this single #[test]).
        static CATALOGS: std::sync::OnceLock<(Catalog, Catalog)> = std::sync::OnceLock::new();
        let (fanout_catalog, solo_catalog) =
            CATALOGS.get_or_init(|| (car_catalog(700), car_catalog(700)));

        // (0, 0) selects the full three-video catalog; the rest pick a pair.
        let names: Vec<String> = if pair == (0, 0) {
            fanout_catalog.video_names()
        } else {
            let all = fanout_catalog.video_names();
            vec![all[pair.0].clone(), all[pair.1].clone()]
        };
        let constraint =
            format!("WHERE class = 'car' ERROR WITHIN {error} AT CONFIDENCE {confidence}%");

        let fanout = fanout_catalog
            .session()
            .query(&format!("SELECT FCOUNT(*) FROM {} {constraint}", names.join(", ")))
            .expect("fan-out query");
        let QueryOutput::CatalogAggregate { value, standard_error, per_video, .. } =
            &fanout.output
        else {
            panic!("expected CatalogAggregate, got {:?}", fanout.output);
        };
        prop_assert_eq!(per_video.len(), names.len());

        // The catalog-wide total is the sum of independent per-video runs.
        let mut solo_sum = 0.0f64;
        let mut solo_se_sum = 0.0f64;
        let mut solo_se_squares = 0.0f64;
        let mut any_sampled = false;
        for name in &names {
            let solo = solo_catalog
                .session()
                .query(&format!("SELECT FCOUNT(*) FROM {name} {constraint}"))
                .expect("per-video query");
            solo_sum += solo.output.aggregate_value().expect("aggregate");
            if let Some(se) = solo.output.aggregate_standard_error() {
                any_sampled = true;
                solo_se_sum += se;
                solo_se_squares += se * se;
            }
        }
        prop_assert!(
            (value - solo_sum).abs() < 1e-9,
            "catalog total {} != sum of per-video runs {}",
            value,
            solo_sum
        );

        // Composed CI: the root-sum-square of independent standard errors — never
        // wider than the summed per-video intervals (same critical value on both
        // sides, so comparing standard errors compares interval widths).
        match standard_error {
            Some(composed) => {
                prop_assert!(any_sampled);
                prop_assert!(
                    (composed - solo_se_squares.sqrt()).abs() < 1e-9,
                    "composed SE {} != root-sum-square {}",
                    composed,
                    solo_se_squares.sqrt()
                );
                prop_assert!(
                    *composed <= solo_se_sum + 1e-12,
                    "composed SE {} wider than summed per-video SEs {}",
                    composed,
                    solo_se_sum
                );
            }
            None => prop_assert!(!any_sampled, "sampled sub-queries must compose an SE"),
        }

        // The per-video breakdown lists the videos in FROM order.
        let listed: Vec<&str> = per_video.iter().map(|v| v.video.as_str()).collect();
        let expected: Vec<&str> = names.iter().map(|n| n.as_str()).collect();
        prop_assert_eq!(listed, expected);
    }
}

// ---------------------------------------------------------------------------------
// Global-limit scrubbing: early cancellation and the sequential-ordering bound.
// ---------------------------------------------------------------------------------

/// Runs the sequential baseline for one ordering of the catalog's videos: scrub each
/// video in turn with the still-unsatisfied remainder of the global limit, stopping
/// as soon as it is met. Returns total detector calls charged.
fn sequential_scrub_calls(catalog: &Catalog, ordering: &[&str], limit: u64, gap: u64) -> u64 {
    let session = catalog.session();
    let mut remaining = limit;
    let mut calls = 0u64;
    for name in ordering {
        if remaining == 0 {
            break;
        }
        let result = session
            .query(&format!(
                "SELECT timestamp FROM {name} GROUP BY timestamp \
                 HAVING SUM(class='car') >= 1 LIMIT {remaining} GAP {gap}"
            ))
            .expect("sequential scrub");
        calls += result.output.detection_calls();
        remaining -= result.output.frames().expect("frames").len() as u64;
    }
    calls
}

#[test]
fn global_limit_scrub_charges_no_more_than_the_best_sequential_ordering() {
    let catalog = car_catalog(900);
    let session = catalog.session();
    // A limit larger than any single video's cheap supply of events: a sequential
    // plan must dig into its first video's low-confidence tail (where precision
    // decays), while the global interleave keeps skimming the top of all three
    // rankings — this is exactly the regime where cross-video scrubbing pays.
    let (limit, gap) = (30u64, 30u64);

    let fanout = session
        .query(&format!(
            "SELECT timestamp FROM * GROUP BY timestamp \
             HAVING SUM(class='car') >= 1 LIMIT {limit} GAP {gap}"
        ))
        .expect("global scrub");
    let frames = fanout.output.sourced_frames().expect("sourced frames");
    assert_eq!(frames.len() as u64, limit, "cars are abundant in all three streams");
    let fanout_calls = fanout.output.detection_calls();

    // Every returned frame is detector-verified in its own video, and GAP binds
    // within a video only.
    for sf in frames {
        let ctx = catalog.context(&sf.video).unwrap();
        let detections = ctx.detector().detect(&ctx.video(), sf.frame);
        assert!(
            detections.iter().any(|d| d.class == ObjectClass::Car),
            "{}#{} fails the predicate",
            sf.video,
            sf.frame
        );
    }
    for a in frames {
        for b in frames {
            if a != b && a.video == b.video {
                assert!(a.frame.abs_diff(b.frame) >= gap, "{a:?} vs {b:?} violate GAP");
            }
        }
    }

    // The interleaved global ranking must beat (or tie) every sequential ordering,
    // including the best one.
    let names = catalog.video_names();
    let mut best = u64::MAX;
    for a in 0..names.len() {
        for b in 0..names.len() {
            for c in 0..names.len() {
                if a == b || b == c || a == c {
                    continue;
                }
                let ordering = [names[a].as_str(), names[b].as_str(), names[c].as_str()];
                best = best.min(sequential_scrub_calls(&catalog, &ordering, limit, gap));
            }
        }
    }
    assert!(
        fanout_calls <= best,
        "global interleave charged {fanout_calls} detector calls, best sequential \
         ordering charged {best}"
    );
}

#[test]
fn global_limit_stops_charging_every_video_once_satisfied() {
    // Rialto has no cars, so its sub-plan falls back to a sequential scan whose
    // candidates rank (at -inf confidence) behind every NN-ranked candidate of the
    // car streams. Once the global limit is met by those streams, early cancellation
    // must leave the whole rialto scan uncharged — the total call count stays far
    // below rialto's frame count, and no rialto frame is returned.
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 800).unwrap();
    catalog.register_preset(DatasetPreset::Rialto, 800).unwrap();
    let session = catalog.session();

    let limit = 6u64;
    let result = session
        .query(&format!(
            "SELECT timestamp FROM * GROUP BY timestamp \
             HAVING SUM(class='car') >= 1 LIMIT {limit} GAP 20"
        ))
        .expect("global scrub");
    let frames = result.output.sourced_frames().expect("sourced frames");
    assert_eq!(frames.len() as u64, limit);
    assert!(frames.iter().all(|sf| sf.video == "taipei"), "{frames:?}");
    let rialto_len = catalog.context("rialto").unwrap().video().len();
    assert!(
        result.output.detection_calls() < rialto_len,
        "early cancellation failed: {} calls would mean rialto's scan ran",
        result.output.detection_calls()
    );
}

// ---------------------------------------------------------------------------------
// EXPLAIN: one sub-plan per video, each with its own cache warmth.
// ---------------------------------------------------------------------------------

#[test]
fn explain_from_star_renders_per_video_subplans_with_their_own_warmth() {
    let catalog = car_catalog(700);
    let session = catalog.session();
    let constraint = "WHERE class = 'car' ERROR WITHIN 0.15 AT CONFIDENCE 95%";

    // Warm exactly one video's caches.
    session.query(&format!("SELECT FCOUNT(*) FROM taipei {constraint}")).expect("warm taipei");
    let charged = catalog.clock().total();
    assert!(charged > 0.0);

    let explain =
        session.query(&format!("EXPLAIN SELECT FCOUNT(*) FROM * {constraint}")).expect("explain");
    let plan = explain.output.explain_plan().expect("plan");
    assert!(plan.is_fan_out());
    assert_eq!(plan.subplans.len(), 3);
    assert_eq!(plan.merge, MergeSemantics::SumEstimates);

    let warmth: Vec<(String, CacheWarmth)> =
        plan.subplans.iter().map(|sub| (sub.video.clone(), sub.specialized_cache)).collect();
    assert!(warmth.contains(&("taipei".to_string(), CacheWarmth::Memory)));
    assert!(warmth.contains(&("night-street".to_string(), CacheWarmth::Cold)));
    assert!(warmth.contains(&("amsterdam".to_string(), CacheWarmth::Cold)));

    // The rendering shows one sub-plan block per video, and EXPLAIN stays free.
    let rendered = plan.to_string();
    assert!(rendered.contains("QUERY PLAN over 3 videos"), "{rendered}");
    assert!(rendered.contains("merge:"), "{rendered}");
    for name in catalog.video_names() {
        assert!(rendered.contains(&format!("SUB-PLAN for '{name}'")), "{rendered}");
    }
    assert!(rendered.contains("caches:   specialized=warm"), "{rendered}");
    assert!(rendered.contains("caches:   specialized=cold"), "{rendered}");
    assert_eq!(catalog.clock().total(), charged, "EXPLAIN must stay free");
}

// ---------------------------------------------------------------------------------
// Selection: rows concatenate in FROM order, tagged with their source video.
// ---------------------------------------------------------------------------------

#[test]
fn multi_video_selection_concatenates_source_tagged_rows() {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 700).unwrap();
    catalog.register_preset(DatasetPreset::Amsterdam, 700).unwrap();
    let session = catalog.session();
    let predicate = "WHERE class = 'bus' AND area(mask) > 20000";

    let multi = session
        .query(&format!("SELECT * FROM amsterdam, taipei {predicate}"))
        .expect("multi-video selection");
    let rows = multi.output.sourced_rows().expect("sourced rows");

    // Per-video runs on a second, identical catalog reproduce the fan-out exactly.
    let solo_catalog = {
        let c = Catalog::new();
        c.register_preset(DatasetPreset::Taipei, 700).unwrap();
        c.register_preset(DatasetPreset::Amsterdam, 700).unwrap();
        c
    };
    let solo = solo_catalog.session();
    let amsterdam_rows = solo
        .query(&format!("SELECT * FROM amsterdam {predicate}"))
        .unwrap()
        .output
        .rows()
        .unwrap()
        .to_vec();
    let taipei_rows = solo
        .query(&format!("SELECT * FROM taipei {predicate}"))
        .unwrap()
        .output
        .rows()
        .unwrap()
        .to_vec();

    assert_eq!(rows.len(), amsterdam_rows.len() + taipei_rows.len());
    // FROM order: every amsterdam row precedes every taipei row.
    let (head, tail) = rows.split_at(amsterdam_rows.len());
    assert!(head.iter().all(|r| r.video == "amsterdam"));
    assert!(tail.iter().all(|r| r.video == "taipei"));
    assert_eq!(head.iter().map(|r| r.row.clone()).collect::<Vec<_>>(), amsterdam_rows);
    assert_eq!(tail.iter().map(|r| r.row.clone()).collect::<Vec<_>>(), taipei_rows);
}

// ---------------------------------------------------------------------------------
// Result-shape stability and plan-override consistency.
// ---------------------------------------------------------------------------------

#[test]
fn from_star_keeps_catalog_semantics_over_a_one_video_catalog() {
    // The result shape of `FROM *` must not depend on how many videos happen to be
    // registered: callers written against the catalog surface would otherwise break
    // the day their deployment shrinks to one stream.
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 700).unwrap();
    let session = catalog.session();

    let aggregate = session
        .query("SELECT FCOUNT(*) FROM * WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%")
        .unwrap();
    let per_video = aggregate.output.per_video_aggregates().expect("CatalogAggregate shape");
    assert_eq!(per_video.len(), 1);
    assert_eq!(per_video[0].video, "taipei");

    let scrub = session
        .query(
            "SELECT timestamp FROM * GROUP BY timestamp HAVING SUM(class='car') >= 1 \
             LIMIT 3 GAP 30",
        )
        .unwrap();
    let frames = scrub.output.sourced_frames().expect("CatalogFrames shape");
    assert!(frames.iter().all(|sf| sf.video == "taipei"));

    let select = session.query("SELECT * FROM * WHERE class = 'bus'").unwrap();
    assert!(select.output.sourced_rows().is_some(), "CatalogRows shape");

    // EXPLAIN renders the fan-out form too (merge line + sub-plan block).
    let explain = session
        .query("EXPLAIN SELECT FCOUNT(*) FROM * WHERE class = 'car' ERROR WITHIN 0.2")
        .unwrap();
    let plan = explain.output.explain_plan().unwrap();
    assert!(plan.is_fan_out());
    let rendered = plan.to_string();
    assert!(rendered.contains("QUERY PLAN over 1 video"), "{rendered}");
    assert!(rendered.contains("SUB-PLAN for 'taipei'"), "{rendered}");

    // A single *named* video keeps the single-video shapes.
    let named =
        session.query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2").unwrap();
    assert!(named.output.per_video_aggregates().is_none());
    assert!(named.output.aggregate_value().is_some());
}

#[test]
fn divergent_per_subplan_scrub_overrides_are_rejected() {
    // The global-limit scrub runs one LIMIT/GAP/budget across all videos; a
    // plan_mut edit that makes sub-plans disagree must fail loudly instead of
    // silently running with sub-plan 0's values.
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 700).unwrap();
    catalog.register_preset(DatasetPreset::Amsterdam, 700).unwrap();
    let session = catalog.session();
    let sql = "SELECT timestamp FROM * GROUP BY timestamp HAVING SUM(class='car') >= 1 \
               LIMIT 4 GAP 30";

    let mut prepared = session.prepare(sql).unwrap();
    prepared.plan_mut().subplans[1].detection_budget = Some(10);
    match prepared.run() {
        Err(BlazeItError::Unsupported(message)) => {
            assert!(message.contains("global LIMIT/GAP"), "{message}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }

    let mut prepared = session.prepare(sql).unwrap();
    if let Some(scrub) = &mut prepared.plan_mut().subplans[1].scrub {
        scrub.limit = 99;
    }
    assert!(matches!(prepared.run(), Err(BlazeItError::Unsupported(_))));

    // Uniform overrides (what with_budget applies) still run.
    let capped = session.prepare(sql).unwrap().with_budget(25).run().unwrap();
    assert!(capped.output.detection_calls() <= 25);
}

// ---------------------------------------------------------------------------------
// Routing errors.
// ---------------------------------------------------------------------------------

#[test]
fn from_star_on_an_empty_catalog_is_a_clear_error() {
    let catalog = Catalog::new();
    let err = catalog.session().query("SELECT FCOUNT(*) FROM * WHERE class = 'car'");
    match err {
        Err(BlazeItError::Unsupported(message)) => {
            assert!(message.contains("catalog is empty"), "{message}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn unknown_video_in_a_from_list_fails_with_a_hint() {
    let catalog = car_catalog(600);
    let err = catalog
        .session()
        .query("SELECT FCOUNT(*) FROM taipei, amstrdam WHERE class = 'car' ERROR WITHIN 0.2");
    match err {
        Err(BlazeItError::UnknownVideo { requested, hint, .. }) => {
            assert_eq!(requested, "amstrdam");
            assert_eq!(hint.as_deref(), Some("amsterdam"));
        }
        other => panic!("expected UnknownVideo, got {other:?}"),
    }
}
