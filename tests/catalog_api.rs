//! Integration tests for the catalog / session / prepared-query API: EXPLAIN golden
//! output, multi-video routing with per-video cache isolation, and plan overrides.

use blazeit::prelude::*;

fn taipei_catalog(frames: u64) -> Catalog {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, frames).expect("register taipei");
    catalog
}

// ---------------------------------------------------------------------------------
// EXPLAIN golden output (one per query class), and the free-of-charge guarantee.
// ---------------------------------------------------------------------------------

#[test]
fn explain_golden_output_per_query_class() {
    let catalog = taipei_catalog(900);
    let session = catalog.session();

    let explain = |sql: &str| -> String {
        let result = session.query(sql).expect("explain runs");
        result.output.explain_plan().expect("explain output").to_string()
    };

    let aggregate = explain(
        "EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' \
         ERROR WITHIN 0.1 AT CONFIDENCE 95%",
    );
    assert_eq!(
        aggregate,
        "QUERY PLAN for 'taipei'\n\
         \x20 class:    aggregate (FCOUNT)\n\
         \x20 strategy: specialized NN; rewrite vs control variates decided at execution \
         (train + held-out error check)\n\
         \x20 heads:    car<=5\n\
         \x20 sampling: error within 0.1 at 95% confidence (seed 2980241781)\n\
         \x20 budget:   unlimited detector calls\n\
         \x20 caches:   specialized=cold score-index=cold"
    );

    let scrub = explain(
        "EXPLAIN SELECT timestamp FROM taipei GROUP BY timestamp \
         HAVING SUM(class='car') >= 2 LIMIT 5 GAP 60",
    );
    assert_eq!(
        scrub,
        "QUERY PLAN for 'taipei'\n\
         \x20 class:    scrub (cardinality-limited)\n\
         \x20 strategy: rank frames by specialized-NN confidence, verify best-first\n\
         \x20 heads:    car<=5\n\
         \x20 scrub:    limit 5 gap 60\n\
         \x20 budget:   unlimited detector calls\n\
         \x20 caches:   specialized=cold score-index=cold"
    );

    let selection = explain(
        "EXPLAIN SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 10 \
         AND area(mask) > 20000 GROUP BY trackid HAVING COUNT(*) > 15",
    );
    assert_eq!(
        selection,
        "QUERY PLAN for 'taipei'\n\
         \x20 class:    content-based selection\n\
         \x20 strategy: filtered scan feeding the object detector\n\
         \x20 heads:    bus<=1\n\
         \x20 filters:  label=on content=on temporal=on spatial=on\n\
         \x20 budget:   unlimited detector calls\n\
         \x20 caches:   specialized=cold score-index=cold"
    );

    // None of the three EXPLAINs may charge the simulated clock.
    assert_eq!(catalog.clock().total(), 0.0, "EXPLAIN must be free");
}

#[test]
fn explain_decision_resolves_once_caches_are_warm() {
    let catalog = taipei_catalog(900);
    let session = catalog.session();
    let sql = "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";

    // Cold caches: the rewrite decision honestly defers to execution.
    let cold = session.prepare(&format!("EXPLAIN {sql}")).unwrap();
    assert_eq!(
        cold.plan().only().strategy,
        PlanStrategy::SpecializedAggregate { decision: RewriteDecision::AtExecution }
    );
    assert_eq!(cold.plan().only().specialized_cache, CacheWarmth::Cold);

    // Run the real query once (trains the NN, scores the held-out day).
    session.query(sql).unwrap();
    let charged = catalog.clock().total();
    assert!(charged > 0.0);

    // Warm caches: the plan resolves the decision — still for free.
    let warm = session.prepare(&format!("EXPLAIN {sql}")).unwrap();
    match &warm.plan().only().strategy {
        PlanStrategy::SpecializedAggregate { decision } => {
            assert_ne!(*decision, RewriteDecision::AtExecution, "warm caches must decide");
        }
        other => panic!("unexpected strategy {other:?}"),
    }
    assert_eq!(warm.plan().only().specialized_cache, CacheWarmth::Memory);
    assert!(warm.run().unwrap().output.explain_plan().is_some());
    assert_eq!(catalog.clock().total(), charged, "planning and EXPLAIN stay free");
}

// ---------------------------------------------------------------------------------
// Multi-video routing and per-video cache isolation.
// ---------------------------------------------------------------------------------

#[test]
fn one_catalog_serves_multiple_videos_with_isolated_score_indexes() {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 1_000).expect("register taipei");
    catalog.register_preset(DatasetPreset::Rialto, 1_000).expect("register rialto");
    let session = catalog.session();

    let taipei_sql =
        "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
    let rialto_sql =
        "SELECT FCOUNT(*) FROM rialto WHERE class = 'boat' ERROR WITHIN 0.2 AT CONFIDENCE 95%";

    // First query on each video trains + scores that video.
    let taipei_first = session.query(taipei_sql).unwrap().output.aggregate_value().unwrap();
    let specialized_after_taipei = catalog.clock().breakdown().specialized;
    assert!(specialized_after_taipei > 0.0);

    let rialto_first = session.query(rialto_sql).unwrap().output.aggregate_value().unwrap();
    let specialized_after_rialto = catalog.clock().breakdown().specialized;
    assert!(
        specialized_after_rialto > specialized_after_taipei,
        "rialto cannot reuse taipei's score index"
    );

    // Second query on each video answers from that video's own cached index: zero
    // additional specialized inference (the acceptance scenario).
    let taipei_second = session.query(taipei_sql).unwrap().output.aggregate_value().unwrap();
    let rialto_second = session.query(rialto_sql).unwrap().output.aggregate_value().unwrap();
    let specialized_after_repeats = catalog.clock().breakdown().specialized;
    assert!(
        (specialized_after_repeats - specialized_after_rialto).abs() < 1e-12,
        "repeat queries must charge zero specialized inference"
    );

    // Deterministic engine: repeated queries agree with themselves, and the two
    // videos produce genuinely different answers (no cross-video routing mixups).
    assert_eq!(taipei_first, taipei_second);
    assert_eq!(rialto_first, rialto_second);
    assert_ne!(taipei_first, rialto_first);

    // Routing errors list the whole catalog.
    match session.query("SELECT FCOUNT(*) FROM amsterdam WHERE class = 'car'") {
        Err(BlazeItError::UnknownVideo { requested, available, .. }) => {
            assert_eq!(requested, "amsterdam");
            assert_eq!(available, vec!["taipei".to_string(), "rialto".to_string()]);
        }
        other => panic!("expected UnknownVideo, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------------
// Plan-override round-trips.
// ---------------------------------------------------------------------------------

#[test]
fn with_options_actually_changes_selection_execution() {
    let catalog = taipei_catalog(1_200);
    let session = catalog.session();
    let sql = "SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 10 \
               AND area(mask) > 20000 GROUP BY trackid HAVING COUNT(*) > 15";

    let prepared = session.prepare(sql).unwrap();
    assert_eq!(prepared.plan().only().selection, SelectionOptions::all());
    let filtered = prepared.run().unwrap();

    let overridden = session.prepare(sql).unwrap().with_options(SelectionOptions::none());
    assert_eq!(overridden.plan().only().selection, SelectionOptions::none());
    let naive = overridden.run().unwrap();

    assert!(
        filtered.output.detection_calls() < naive.output.detection_calls(),
        "disabling every filter must make the scan strictly more expensive \
         (filtered {} vs naive {})",
        filtered.output.detection_calls(),
        naive.output.detection_calls()
    );
    assert_eq!(naive.output.detection_calls(), catalog.context("taipei").unwrap().video().len());
}

#[test]
fn with_budget_caps_sampling_detector_calls() {
    let catalog = taipei_catalog(1_200);
    let session = catalog.session();
    // Birds never appear in taipei, so this plans as naive sampling whose K/eps
    // initial draw (10 detector calls per 0.1 error unit) far exceeds the budget.
    let sql =
        "SELECT FCOUNT(*) FROM taipei WHERE class = 'bird' ERROR WITHIN 0.01 AT CONFIDENCE 95%";

    let unbudgeted = session.prepare(sql).unwrap();
    assert_eq!(unbudgeted.plan().only().strategy, PlanStrategy::NaiveSampling);
    assert_eq!(unbudgeted.plan().only().detection_budget, None);
    let free_run = unbudgeted.run().unwrap();

    let budgeted = session.prepare(sql).unwrap().with_budget(40);
    assert_eq!(budgeted.plan().only().detection_budget, Some(40));
    let capped_run = budgeted.run().unwrap();

    assert!(free_run.output.detection_calls() > 40);
    assert!(
        capped_run.output.detection_calls() <= 40,
        "budget of 40 calls was exceeded: {}",
        capped_run.output.detection_calls()
    );
}

#[test]
fn with_budget_caps_scrub_verification() {
    let catalog = taipei_catalog(1_500);
    let session = catalog.session();
    // A predicate with few true positives forces a long verification tail.
    let sql = "SELECT timestamp FROM taipei GROUP BY timestamp \
               HAVING SUM(class='car') >= 4 LIMIT 10";

    let free_run = session.prepare(sql).unwrap().run().unwrap();
    let capped_run = session.prepare(sql).unwrap().with_budget(25).run().unwrap();
    assert!(capped_run.output.detection_calls() <= 25);
    assert!(capped_run.output.detection_calls() <= free_run.output.detection_calls());
    // Whatever the budget returned must be a prefix-quality subset: every frame it
    // returned was detector-verified, so it also appears in the unbudgeted result.
    let free_frames = free_run.output.frames().unwrap();
    for frame in capped_run.output.frames().unwrap() {
        assert!(free_frames.contains(frame), "budgeted result invented frame {frame}");
    }
}
