//! Chaos tests for the robustness subsystem (`--features fault-injection`).
//!
//! The invariant under test: with **any** deterministic fault schedule
//! installed, every query either returns an answer **bit-identical** to the
//! fault-free run or a **typed** error — never a panic, never a silently wrong
//! answer. After the faults stop, the engine heals: degraded contexts return
//! to store-backed mode and the durable store converges back to the fault-free
//! artifact bytes.
//!
//! Without the `fault-injection` feature this file compiles to nothing (the
//! failpoints themselves compile out of the engine; a unit test in
//! `blazeit_core::fault` pins that).
#![cfg(feature = "fault-injection")]

use blazeit::core::fault::{install, FaultPlan, FaultSite};
use blazeit::nn::ScoreMatrix;
use blazeit::prelude::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

const CAR: ObjectClass = ObjectClass::Car;
const FCOUNT_SQL: &str =
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
const SCRUB_SQL: &str = "SELECT timestamp FROM taipei GROUP BY timestamp \
                         HAVING SUM(class='car') >= 2 LIMIT 5 GAP 60";
const SUBSCRIBE_SQL: &str = "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' EVERY 100 FRAMES";

/// A fresh scratch directory under the system temp dir (respects `TMPDIR`).
fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blazeit-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

// -------------------------------------------------------------------------------
// Shared fixture: one labeled set + capacity video for every chaos case.
// -------------------------------------------------------------------------------

struct Fixture {
    labeled: Arc<LabeledSet>,
    config: BlazeItConfig,
    capacity: Video,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let preset = DatasetPreset::Taipei;
        let frames = 500u64;
        let config = BlazeItConfig::for_preset(preset);
        let train = preset.generate_with_frames(DAY_TRAIN, frames).unwrap();
        let heldout = preset.generate_with_frames(DAY_HELDOUT, frames).unwrap();
        let labeled = Arc::new(LabeledSet::build(train, heldout, &config).unwrap());
        let capacity = preset.generate_with_frames(DAY_TEST, frames).unwrap();
        Fixture { labeled, config, capacity }
    })
}

// -------------------------------------------------------------------------------
// The pipeline each case runs: a subscribed stream driven to exhaustion, then
// cold and warm FCOUNT, a scrub, and finally a second catalog instance over the
// same store (exercising the disk read path, including torn-artifact reads).
// -------------------------------------------------------------------------------

/// Everything observable about one pipeline run, in bit-exact form.
#[derive(Debug, Clone, PartialEq)]
struct PipelineRun {
    /// `(tick, value bits, generation)` per subscription update, in order.
    updates: Vec<(u64, u64, u64)>,
    fcount_first: u64,
    fcount_warm: u64,
    scrub_frames: Vec<u64>,
    /// FCOUNT from a second catalog instance reading the same store.
    fcount_reopened: u64,
    /// Typed ingest errors observed while driving the stream (faulted runs
    /// simply retry the advance; the error promises the stream is unchanged).
    ingest_errors: usize,
}

fn run_pipeline(dir: &Path) -> PipelineRun {
    let fx = fixture();
    let catalog = Catalog::with_index_store(dir).expect("open index store");
    catalog
        .register_stream(
            fx.capacity.clone(),
            Arc::clone(&fx.labeled),
            fx.config.clone(),
            150,
            DriftConfig::disabled(),
        )
        .expect("register stream");
    let session = catalog.session();
    let mut sub = session.subscribe(SUBSCRIBE_SQL).expect("subscribe");
    let stream = catalog.stream("taipei").expect("stream handle");
    let mut updates = Vec::new();
    let mut ingest_errors = 0usize;
    let mut attempts = 0usize;
    while !stream.is_exhausted() {
        attempts += 1;
        assert!(attempts < 512, "stream never exhausted under fault schedule");
        match stream.advance(100) {
            Ok(_) => {}
            Err(BlazeItError::Ingest { .. }) => ingest_errors += 1,
            Err(other) => panic!("advance failed with a non-ingest error: {other}"),
        }
        for update in sub.poll().expect("poll") {
            updates.push((update.tick, update.value.to_bits(), update.generation));
        }
    }
    let fcount = |catalog: &Catalog| -> u64 {
        catalog
            .session()
            .query(FCOUNT_SQL)
            .expect("fcount")
            .output
            .aggregate_value()
            .expect("aggregate output")
            .to_bits()
    };
    let fcount_first = fcount(&catalog);
    let fcount_warm = fcount(&catalog);
    let scrub_frames =
        catalog.session().query(SCRUB_SQL).expect("scrub").output.frames().unwrap().to_vec();

    // A second catalog over the same store: reads whatever artifacts the run
    // left behind (possibly torn or missing) and must still answer
    // bit-identically, recomputing where the store lets it down.
    let mut reopened = Catalog::with_index_store(dir).expect("reopen store");
    reopened
        .register(fx.capacity.clone(), Arc::clone(&fx.labeled), fx.config.clone())
        .expect("register reopened");
    let fcount_reopened = fcount(&reopened);
    PipelineRun { updates, fcount_first, fcount_warm, scrub_frames, fcount_reopened, ingest_errors }
}

/// `(update observations, first fcount, warm fcount, scrub frames, reopened
/// fcount)` — the fields that must be bit-identical across fault schedules
/// (`ingest_errors` is schedule-dependent bookkeeping).
type Answers = (Vec<(u64, u64, u64)>, u64, u64, Vec<u64>, u64);

/// Artifact files as `(relative path, bytes)`, sorted by path.
type Artifacts = Vec<(String, Vec<u8>)>;

fn answers(run: &PipelineRun) -> Answers {
    (
        run.updates.clone(),
        run.fcount_first,
        run.fcount_warm,
        run.scrub_frames.clone(),
        run.fcount_reopened,
    )
}

/// The fault-free reference run (and its surviving artifact bytes), computed
/// once.
fn baseline() -> &'static (PipelineRun, Artifacts) {
    static BASELINE: OnceLock<(PipelineRun, Artifacts)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = tmpdir("baseline");
        let run = run_pipeline(&dir);
        let artifacts = artifact_bytes(&dir);
        assert!(!artifacts.is_empty(), "baseline run persisted no artifacts");
        (run, artifacts)
    })
}

/// Every artifact file under `root` as `(relative path, bytes)`, sorted.
fn artifact_bytes(root: &Path) -> Artifacts {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if matches!(
                path.extension().and_then(|e| e.to_str()),
                Some("bzn") | Some("bzs") | Some("bzl")
            ) {
                let rel = path.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    out.sort();
    out
}

// -------------------------------------------------------------------------------
// The chaos property: 64 random (seed, probability) fault schedules.
// -------------------------------------------------------------------------------

proptest! {
    #[test]
    fn any_fault_schedule_yields_bit_exact_answers_or_typed_errors(
        seed in 0u64..u64::MAX,
        p_millis in 0u64..200,
    ) {
        let (reference, reference_artifacts) = baseline();
        let dir = tmpdir(&format!("chaos-{seed}-{p_millis}"));
        let chaotic = {
            let _guard = install(FaultPlan::uniform(seed, p_millis as f64 / 1000.0));
            run_pipeline(&dir)
        };
        // Invariant 1: every answer the faulted run produced is bit-identical
        // to the fault-free run's. (Typed errors already surfaced as retried
        // ingests or would have panicked `run_pipeline`.)
        prop_assert_eq!(answers(&chaotic), answers(reference));

        // Invariant 2: healing. With the schedule uninstalled, re-running the
        // read path over the surviving store converges every artifact the
        // fault-free run produced back to its exact bytes (torn artifacts are
        // detected, recomputed, and rewritten; missing ones are rebuilt).
        let healed = run_pipeline(&dir);
        prop_assert_eq!(answers(&healed), answers(reference));
        prop_assert_eq!(healed.ingest_errors, 0);
        let healed_artifacts = artifact_bytes(&dir);
        for (name, bytes) in reference_artifacts {
            let found = healed_artifacts.iter().find(|(n, _)| n == name);
            prop_assert!(found.is_some(), "healed store is missing artifact {}", name);
            prop_assert_eq!(
                &found.unwrap().1, bytes,
                "healed artifact {} diverged from the fault-free bytes", name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// -------------------------------------------------------------------------------
// Determinism: the same plan injects the same faults and yields the same run.
// -------------------------------------------------------------------------------

#[test]
fn identical_fault_plans_reproduce_identical_runs() {
    let runs: Vec<(PipelineRun, u64)> = (0..2)
        .map(|i| {
            let dir = tmpdir(&format!("determinism-{i}"));
            let guard = install(FaultPlan::uniform(0x00DE_7EC7_AB1E, 0.08));
            let run = run_pipeline(&dir);
            let injected = guard.injected_total();
            drop(guard);
            let _ = std::fs::remove_dir_all(&dir);
            (run, injected)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "same seed, same schedule, same run");
}

// -------------------------------------------------------------------------------
// Store degradation and probation-based healing.
// -------------------------------------------------------------------------------

#[test]
fn persistent_store_failure_degrades_to_memory_only_then_heals() {
    let fx = fixture();
    // Fault-free reference: same registration shape, its own store.
    let reference_bits = {
        let dir = tmpdir("degrade-reference");
        let catalog = Catalog::with_index_store(&dir).unwrap();
        catalog
            .register_stream(
                fx.capacity.clone(),
                Arc::clone(&fx.labeled),
                fx.config.clone(),
                150,
                DriftConfig::disabled(),
            )
            .unwrap();
        let bits = catalog
            .session()
            .query(FCOUNT_SQL)
            .unwrap()
            .output
            .aggregate_value()
            .unwrap()
            .to_bits();
        let _ = std::fs::remove_dir_all(&dir);
        bits
    };
    let dir = tmpdir("degrade");
    let catalog = Catalog::with_index_store(&dir).unwrap();
    catalog
        .register_stream(
            fx.capacity.clone(),
            Arc::clone(&fx.labeled),
            fx.config.clone(),
            150,
            DriftConfig::disabled(),
        )
        .unwrap();
    {
        // A dead store: every read, write, and removal fails (transient or
        // hard, the schedule's choice). The query must still answer — computing
        // in memory — and after three consecutive failures the context drops
        // to memory-only mode.
        let _guard = install(
            FaultPlan::only(11, FaultSite::StoreRead, 1.0)
                .with_site(FaultSite::StoreWrite, 1.0)
                .with_site(FaultSite::StoreRemove, 1.0),
        );
        let value = catalog
            .session()
            .query(FCOUNT_SQL)
            .expect("query answers despite a dead store")
            .output
            .aggregate_value()
            .unwrap();
        assert_eq!(value.to_bits(), reference_bits, "degradation never changes the answer");
        let report = catalog.context("taipei").unwrap().health().report();
        assert!(report.store_degraded, "3+ consecutive store failures degrade: {report:?}");
        assert!(report.store_errors > 0);
        assert!(report.health_line().starts_with("degraded"));
        // EXPLAIN renders the degradation.
        let explain = catalog.session().query(&format!("EXPLAIN {FCOUNT_SQL}")).unwrap();
        let plan = format!("{}", explain.output.explain_plan().unwrap());
        assert!(plan.contains("health:   degraded"), "plan renders health line:\n{plan}");
    }
    // Faults stopped. The memory caches are warm, so repeat queries alone
    // would never touch the store again; streaming ingest keeps generating
    // store-backed work (write-behind of the grown score index), which drives
    // the probation window: skipped ops, then a probe, which now succeeds and
    // restores store-backed mode.
    let stream = catalog.stream("taipei").unwrap();
    let mut healed = false;
    while !stream.is_exhausted() {
        stream.advance(5).unwrap();
        if !catalog.context("taipei").unwrap().health().report().store_degraded {
            healed = true;
            break;
        }
    }
    assert!(healed, "probation re-probes and heals once faults stop");
    // Healthy again: EXPLAIN drops the degradation banner.
    let explain = catalog.session().query(&format!("EXPLAIN {FCOUNT_SQL}")).unwrap();
    let plan = format!("{}", explain.output.explain_plan().unwrap());
    assert!(!plan.contains("degraded"), "healed plan:\n{plan}");
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------------
// Torn writes: reported success, detected on read, healed by recompute.
// -------------------------------------------------------------------------------

#[test]
fn torn_write_is_detected_on_read_and_healed_by_rewrite() {
    let dir = tmpdir("torn");
    let store = IndexStore::open(&dir).unwrap();
    let mut probs = Vec::new();
    for i in 0..600usize {
        probs.push((i as f32 * 0.618).fract());
    }
    let scores = ScoreMatrix::from_raw(200, vec![3], probs).unwrap();
    // Scan seeds until the schedule's first store-write fault is a torn write
    // (it *reports success* while truncating the artifact on disk; hard and
    // transient injections return errors instead, so Ok() identifies it).
    let mut torn_seed = None;
    for seed in 0..64u64 {
        let _guard = install(FaultPlan::only(seed, FaultSite::StoreWrite, 1.0));
        if store.store_scores("v", "k", &scores).is_ok() {
            torn_seed = Some(seed);
            break;
        }
    }
    let torn_seed = torn_seed.expect("some seed draws a torn write first");
    // The read path must refuse the truncated artifact with a typed error —
    // never deserialize garbage.
    let readback = store.load_scores("v", "k");
    assert!(
        matches!(readback, Err(StoreError::Invalid { .. })),
        "torn artifact (seed {torn_seed}) must read back as Invalid, got {readback:?}"
    );
    // Healing: a clean rewrite converges the artifact and the read round-trips
    // bit-exactly.
    store.store_scores("v", "k", &scores).unwrap();
    let healed = store.load_scores("v", "k").unwrap().expect("artifact present");
    for (a, b) in scores.probs().iter().zip(healed.probs()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------------
// Retrain failure: generation pinned, monitor re-armed with backoff, healed by
// the next fault-free refresh.
// -------------------------------------------------------------------------------

#[test]
fn failed_retrain_keeps_generation_and_rearms_with_backoff() {
    let fx = fixture();
    // A drift monitor that always fires once it may check: every checked
    // window "drifts" (threshold below any statistic), checks every 100
    // frames after a 100-frame history.
    let drift = DriftConfig {
        window: 100,
        check_every: 100,
        threshold: -1.0,
        retrain_stride: 3,
        min_history: 100,
    };
    let catalog = Catalog::new();
    catalog
        .register_stream(fx.capacity.clone(), Arc::clone(&fx.labeled), fx.config.clone(), 50, drift)
        .unwrap();
    let session = catalog.session();
    let mut sub = session.subscribe(SUBSCRIBE_SQL).unwrap();
    let stream = catalog.stream("taipei").unwrap();
    let ctx = catalog.context("taipei").unwrap();
    let heads = vec![(CAR, ctx.default_max_count(CAR, 1))];

    // Every retrain faults (task error or task panic, schedule's choice) —
    // the ingest itself must succeed with the failure recorded.
    let report = {
        let _guard = install(FaultPlan::only(3, FaultSite::Retrain, 1.0));
        let report = stream.advance_to(150).expect("ingest survives a failing retrain");
        assert!(report.drift_checked);
        assert_eq!(report.refreshes, vec![]);
        assert_eq!(report.refresh_failures, 1, "the forced drift refresh failed");
        report
    };
    drop(report);
    let status = ctx.stream_status(&heads).unwrap();
    assert_eq!(status.generation, 0, "failed refresh keeps the current generation");
    assert_eq!(status.refresh, RefreshState::Failed { generation: 0 });
    let health = ctx.health().report();
    let retrain = health.retrain.as_ref().expect("retrain failure recorded");
    assert_eq!(retrain.generation, 0);
    assert_eq!(retrain.failures, 1);
    assert_eq!(retrain.backoff_frames, 100, "first failure re-arms after one check interval");
    assert_eq!(retrain.resume_at, 250);
    assert!(health.retrain_line().unwrap().contains("failed@gen 0"));
    // EXPLAIN renders the retrain line.
    let explain = catalog.session().query(&format!("EXPLAIN {FCOUNT_SQL}")).unwrap();
    let plan = format!("{}", explain.output.explain_plan().unwrap());
    assert!(plan.contains("retrain:  failed@gen 0"), "plan renders retrain health:\n{plan}");
    // The subscription keeps answering from generation 0.
    stream.advance_to(200).unwrap();
    for update in sub.poll().unwrap() {
        assert_eq!(update.generation, 0);
    }

    // Inside the backoff window the monitor must not re-check; past it (and
    // with the faults gone) the refresh succeeds and swaps generation 1 in.
    let quiet = stream.advance_to(249).unwrap();
    assert!(!quiet.drift_checked, "monitor is quiet inside the backoff window");
    let mut new_generation = None;
    let mut target = 250;
    while new_generation.is_none() && target <= fx.capacity.len() {
        let report = stream.advance_to(target).unwrap();
        assert_eq!(report.refresh_failures, 0);
        if let Some(refresh) = report.refreshes.first() {
            new_generation = Some(refresh.new_generation);
        }
        target += 100;
    }
    assert_eq!(new_generation, Some(1), "the post-backoff fault-free refresh swaps in gen 1");
    assert!(ctx.health().report().retrain.is_none(), "a successful refresh clears the record");
    let status = ctx.stream_status(&heads).unwrap();
    assert_eq!(status.generation, 1);
    assert_eq!(status.refresh, RefreshState::Completed { generation: 1 });
}

// -------------------------------------------------------------------------------
// Parallel-task panics: typed error, healthy pool.
// -------------------------------------------------------------------------------

#[test]
fn fanned_out_task_panic_is_a_typed_error_and_the_pool_survives() {
    let fx = fixture();
    let catalog = Catalog::new();
    catalog.register(fx.capacity.clone(), Arc::clone(&fx.labeled), fx.config.clone()).unwrap();
    catalog.register_preset(DatasetPreset::Amsterdam, 400).unwrap();
    let sql = "SELECT FCOUNT(*) FROM * WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
    {
        let _guard = install(FaultPlan::only(5, FaultSite::ParTask, 1.0));
        let err = catalog.session().query(sql).expect_err("every sub-query panics");
        assert!(
            matches!(&err, BlazeItError::TaskPanicked { message, .. }
                     if message.contains("injected fault")),
            "panic surfaces as the typed TaskPanicked, got {err}"
        );
    }
    // The worker pool survives the caught panics: the same query runs clean.
    let result = catalog.session().query(sql).expect("pool is healthy after panics");
    assert!(result.output.aggregate_value().is_some());
}
