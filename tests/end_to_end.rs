//! Cross-crate integration tests: FrameQL text in, verified results out, with the
//! accuracy and cost properties the paper's design promises.

use blazeit::core::baselines;
use blazeit::prelude::*;

fn taipei(frames: u64) -> BlazeIt {
    BlazeIt::for_preset(DatasetPreset::Taipei, frames).expect("engine")
}

#[test]
fn aggregate_estimate_respects_error_bound_against_detector_truth() {
    let engine = taipei(3_000);
    let result = engine
        .query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.15 AT CONFIDENCE 95%",
        )
        .unwrap();
    let estimate = result.output.aggregate_value().unwrap();
    let (truth, _) = baselines::oracle_fcount(&engine, Some(ObjectClass::Car));
    // The bound is probabilistic (95%); allow twice the tolerance as the hard test
    // limit so the suite stays deterministic while still catching gross violations.
    assert!(
        (estimate - truth).abs() <= 0.3,
        "estimate {estimate} too far from detector ground truth {truth}"
    );
}

#[test]
fn aggregate_is_cheaper_than_both_baselines() {
    let engine = taipei(3_000);
    let result = engine
        .query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%",
        )
        .unwrap();
    let blazeit_runtime = result.runtime_secs();

    let before = engine.clock().breakdown();
    baselines::naive_fcount(&engine, Some(ObjectClass::Car)).unwrap();
    let naive_runtime = engine.clock().breakdown().since(&before).total();

    let before = engine.clock().breakdown();
    baselines::noscope_fcount(&engine, ObjectClass::Car).unwrap();
    let noscope_runtime = engine.clock().breakdown().since(&before).total();

    assert!(
        blazeit_runtime < naive_runtime,
        "BlazeIt ({blazeit_runtime}) should beat naive ({naive_runtime})"
    );
    assert!(
        blazeit_runtime < noscope_runtime,
        "BlazeIt ({blazeit_runtime}) should beat the NoScope oracle ({noscope_runtime})"
    );
}

#[test]
fn scrubbing_results_are_true_positives_with_gap() {
    let engine = taipei(3_000);
    let result = engine
        .query(
            "SELECT timestamp FROM taipei GROUP BY timestamp \
             HAVING SUM(class='car') >= 2 LIMIT 5 GAP 60",
        )
        .unwrap();
    let frames = result.output.frames().unwrap();
    assert!(frames.len() <= 5);
    for (i, &a) in frames.iter().enumerate() {
        // Verified against the same detector the engine used.
        let detections = engine.detector().detect(&engine.video(), a);
        let cars = detections.iter().filter(|d| d.class == ObjectClass::Car).count();
        assert!(cars >= 2, "frame {a} returned with only {cars} cars");
        for &b in &frames[i + 1..] {
            assert!(a.abs_diff(b) >= 60, "frames {a} and {b} violate GAP 60");
        }
    }
}

#[test]
fn selection_rows_satisfy_all_predicates_and_use_fewer_detections() {
    let engine = taipei(3_000);
    let sql = "SELECT * FROM taipei WHERE class = 'bus' AND area(mask) > 20000";
    let result = engine.query(sql).unwrap();
    let rows = result.output.rows().unwrap();
    for row in rows {
        assert_eq!(row.class, ObjectClass::Bus);
        assert!(row.mask.area() > 20_000.0);
    }
    assert!(
        result.output.detection_calls() <= engine.video().len(),
        "selection should never inspect more frames than exist"
    );
}

#[test]
fn exact_queries_report_exact_method_and_full_cost() {
    let engine = taipei(1_200);
    let result = engine.query("SELECT FCOUNT(*) FROM taipei WHERE class = 'bus'").unwrap();
    match result.output {
        QueryOutput::Aggregate { method, detection_calls, .. } => {
            assert_eq!(method, AggregateMethod::Exact);
            assert_eq!(detection_calls, engine.video().len());
        }
        other => panic!("unexpected output {other:?}"),
    }
}

#[test]
fn count_distinct_uses_entity_resolution() {
    let engine = taipei(1_200);
    let result =
        engine.query("SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'").unwrap();
    let distinct = result.output.aggregate_value().unwrap();
    // There are certainly multiple distinct cars in 40 seconds of a busy intersection,
    // and far fewer distinct cars than total car-rows.
    assert!(distinct >= 2.0, "only {distinct} distinct cars found");
    let exact_rows = engine.query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car'").unwrap();
    let total_rows = exact_rows.output.aggregate_value().unwrap() * engine.video().len() as f64;
    assert!(distinct < total_rows);
}

#[test]
fn unknown_video_or_class_are_clean_errors() {
    let engine = taipei(600);
    assert!(engine.query("SELECT FCOUNT(*) FROM rialto WHERE class = 'boat'").is_err());
    assert!(engine.query("SELECT FCOUNT(*) FROM taipei WHERE class = 'unicorn'").is_err());
    assert!(engine.query("SELECT FCOUNT(* FROM taipei").is_err());
}

#[test]
fn clock_accounts_for_every_query() {
    let engine = taipei(900);
    assert_eq!(engine.clock().total(), 0.0);
    let r1 = engine
        .query(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.3 AT CONFIDENCE 90%",
        )
        .unwrap();
    let after_first = engine.clock().total();
    assert!(after_first > 0.0);
    assert!(r1.cost.total() <= after_first + 1e-9);
    let _r2 = engine
        .query(
            "SELECT timestamp FROM taipei GROUP BY timestamp HAVING SUM(class='car') >= 1 LIMIT 1",
        )
        .unwrap();
    assert!(engine.clock().total() > after_first);
}

#[test]
fn different_presets_run_end_to_end() {
    for preset in [DatasetPreset::Rialto, DatasetPreset::Amsterdam] {
        let engine = BlazeIt::for_preset(preset, 1_500).expect("engine");
        let class = preset.primary_class();
        let sql = format!(
            "SELECT FCOUNT(*) FROM {} WHERE class = '{}' ERROR WITHIN 0.2 AT CONFIDENCE 90%",
            preset.name().replace('-', "_"),
            class.name()
        );
        let result = engine.query(&sql).expect("query");
        assert!(result.output.aggregate_value().unwrap() >= 0.0);
    }
}
