//! Concurrency equivalence of the serving layer: a randomized mixed workload
//! (aggregation / scrubbing / selection / EXPLAIN over warm and cold videos,
//! including duplicate queries issued concurrently) pushed through N server
//! sessions must return **bit-identical** answers to a serial run of the
//! deduplicated query set, at a total simulated cost no greater than that
//! serial run.
//!
//! The catalogs are built once and shared by every proptest case
//! (`OnceLock`), so later cases exercise the warm-cache paths — the server's
//! result cache answers repeats while the serial catalog re-executes, which
//! is exactly the cost inequality under test.

use blazeit::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The mixed query pool: FCOUNT / scrub / selection / EXPLAIN over both
/// registered videos. Every case draws a workload (with duplicates) from it.
const POOL: [&str; 7] = [
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%",
    "SELECT FCOUNT(*) FROM rialto WHERE class = 'boat' ERROR WITHIN 0.25 AT CONFIDENCE 90%",
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.3 AT CONFIDENCE 90%",
    "SELECT timestamp FROM taipei GROUP BY timestamp HAVING SUM(class='car') >= 1 LIMIT 2 GAP 30",
    "SELECT * FROM taipei WHERE class = 'bus' AND area(mask) > 20000",
    "EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%",
    "EXPLAIN SELECT timestamp FROM rialto GROUP BY timestamp HAVING SUM(class='boat') >= 1 LIMIT 1",
];

const FRAMES: u64 = 400;

fn build_catalog() -> Catalog {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, FRAMES).expect("register taipei");
    catalog.register_preset(DatasetPreset::Rialto, FRAMES).expect("register rialto");
    catalog
}

/// The shared fixture: a served catalog and an identically-constructed serial
/// twin. Both see the same deduplicated query multiset over the whole run, so
/// their engine-level caches (specialized NNs, score indexes) stay in
/// lockstep and answers are comparable bit-for-bit.
fn fixture() -> &'static (Server, Catalog) {
    static FIXTURE: OnceLock<(Server, Catalog)> = OnceLock::new();
    FIXTURE.get_or_init(|| (Server::new(Arc::new(build_catalog())), build_catalog()))
}

/// Strips the serving-layer annotation from an `EXPLAIN` output so plans can
/// be compared across the served / serial divide (only the server stamps a
/// `cache:` disposition; the plan itself must agree).
fn comparable_output(output: &QueryOutput) -> QueryOutput {
    match output {
        QueryOutput::Explain { plan } => {
            let mut plan = plan.clone();
            plan.cache = None;
            // Cache-warmth fields describe *when* the plan was rendered, not
            // what the query answers; under concurrency an EXPLAIN can
            // legitimately observe a sibling query's warming. Normalize them.
            for sub in &mut plan.subplans {
                sub.specialized_cache = CacheWarmth::Cold;
                sub.score_index_cache = CacheWarmth::Cold;
            }
            QueryOutput::Explain { plan }
        }
        other => other.clone(),
    }
}

proptest! {
    #[test]
    fn concurrent_sessions_match_the_serial_run_bit_for_bit(
        workload in prop::collection::vec(0usize..POOL.len(), 4..10),
        sessions in 2usize..5,
    ) {
        let (server, serial_catalog) = fixture();
        let clock = server.catalog().clock();
        let serial_clock = serial_catalog.clock();

        // --- concurrent run: the workload round-robins over N sessions ----
        let served_before = clock.total();
        let mut served: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..sessions)
                .map(|s| {
                    let session = server.session();
                    let lane: Vec<usize> =
                        workload.iter().copied().skip(s).step_by(sessions).collect();
                    scope.spawn(move || {
                        lane.into_iter()
                            .map(|q| (q, session.query(POOL[q]).expect("served query")))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("session thread")).collect()
        });
        served.sort_by_key(|(q, _)| *q);
        let served_cost = clock.total() - served_before;

        // --- serial run of the deduplicated query set ---------------------
        let mut unique: Vec<usize> = workload.clone();
        unique.sort_unstable();
        unique.dedup();
        let serial_before = serial_clock.total();
        let serial: Vec<(usize, QueryResult)> = unique
            .iter()
            .map(|&q| (q, serial_catalog.session().query(POOL[q]).expect("serial query")))
            .collect();
        let serial_cost = serial_clock.total() - serial_before;

        // Bit-identical answers: every served result equals the serial run's
        // answer for the same query (f64s compared exactly — the engine is
        // deterministic given identical data and cache evolution).
        for (q, result) in &served {
            let (_, serial_result) =
                serial.iter().find(|(sq, _)| sq == q).expect("dedup covers the workload");
            prop_assert_eq!(
                comparable_output(&result.output),
                comparable_output(&serial_result.output),
                "query {} diverged between served and serial runs",
                POOL[*q]
            );
        }

        // Total simulated cost: coalescing + the result cache mean the served
        // run never exceeds the serial run of the deduplicated set (EXPLAIN
        // is free on both sides; repeats are free only on the served side).
        prop_assert!(
            served_cost <= serial_cost + 1e-9,
            "served cost {served_cost} exceeded serial dedup cost {serial_cost}"
        );

        // Per-session attribution stays exact under sharing: the per-tag
        // ledgers of the served catalog's clock sum to the global clock.
        let summed: f64 =
            clock.charged_tags().iter().map(|&t| clock.breakdown_for(t).total()).sum();
        prop_assert_eq!(summed, clock.total(), "per-tag ledgers must sum to the global clock");
    }
}

/// Duplicate queries issued concurrently resolve as one computation plus
/// hits/waiters — never as independent recomputations (the deterministic
/// complement to the randomized cases above).
#[test]
fn duplicate_storm_computes_once() {
    let server = Server::new(Arc::new(build_catalog()));
    let sql = POOL[0];
    let outputs: Vec<QueryOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let session = server.session();
                scope.spawn(move || session.query(sql).expect("query").output)
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread")).collect()
    });
    for output in &outputs[1..] {
        assert_eq!(output, &outputs[0], "all duplicates must share one answer");
    }
    let stats = server.stats();
    assert_eq!(stats.misses, 1, "exactly one computation: {stats:?}");
    assert_eq!(stats.hits + stats.coalesced, 7, "everyone else attached or hit: {stats:?}");
}
