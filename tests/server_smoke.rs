//! End-to-end smoke test of the `blazeit-server` binary: spawn the real
//! process, drive it with concurrent TCP clients speaking the line/JSON
//! protocol, and check answers, serving stats, and graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

struct ServerProcess {
    child: Child,
    port: u16,
}

impl ServerProcess {
    /// Spawns `blazeit-server` on an ephemeral port and waits for its
    /// `listening on` banner.
    fn spawn() -> ServerProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_blazeit-server"))
            .args(["--port", "0", "--frames", "400", "--videos", "taipei"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn blazeit-server");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server must print its listening banner")
            .expect("read server stdout");
        let port = banner
            .rsplit(':')
            .next()
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or_else(|| panic!("unparseable banner {banner:?}"));
        // Keep draining stdout in the background so the server never blocks
        // on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProcess { child, port }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(("127.0.0.1", self.port)).expect("connect to server")
    }
}

/// Sends one line and reads one JSON line back.
fn roundtrip(stream: &mut TcpStream, command: &str) -> String {
    writeln!(stream, "{command}").expect("send command");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "server closed the connection mid-command");
    line.trim().to_string()
}

/// Pulls `"field":value` out of a flat JSON line (the protocol emits one
/// object per line with no nesting on the paths this test checks).
fn json_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim_matches('"'))
}

/// Extracts and unescapes a JSON *string* field whose value may contain any
/// escaped character (`json_field` above stops at the first `,`/`}`, which
/// multi-line payloads like the trace and the metrics exposition contain).
fn json_string_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&code, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

const QUERY: &str =
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.25 AT CONFIDENCE 90%";

#[test]
fn concurrent_clients_get_identical_answers_and_clean_shutdown() {
    let mut server = ServerProcess::spawn();

    // A ping proves the accept loop is live before the client storm.
    let mut probe = server.connect();
    assert_eq!(roundtrip(&mut probe, "PING"), "{\"ok\":true,\"kind\":\"pong\"}");

    // Eight concurrent clients, all issuing the same query (max coalescing
    // pressure) plus an EXPLAIN and an error case on some of them.
    let answers: Vec<(String, Option<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let mut stream = server.connect();
                scope.spawn(move || {
                    let answer = roundtrip(&mut stream, QUERY);
                    let extra = match i % 3 {
                        0 => Some(roundtrip(&mut stream, &format!("EXPLAIN {QUERY}"))),
                        1 => Some(roundtrip(
                            &mut stream,
                            "SELECT FCOUNT(*) FROM nonexistent WHERE class = 'car'",
                        )),
                        _ => None,
                    };
                    (answer, extra)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Every client saw a successful aggregate, and all eight values are
    // bit-identical (they share one computation or its cached result).
    let first_value = json_field(&answers[0].0, "value").expect("aggregate value").to_string();
    for (answer, extra) in &answers {
        assert_eq!(json_field(answer, "ok"), Some("true"), "{answer}");
        assert_eq!(json_field(answer, "kind"), Some("aggregate"), "{answer}");
        assert_eq!(json_field(answer, "value"), Some(first_value.as_str()), "{answer}");
        match extra {
            Some(line) if line.contains("\"kind\":\"explain\"") => {
                assert_eq!(json_field(line, "ok"), Some("true"), "{line}");
                assert!(line.contains("cache:"), "EXPLAIN must report the disposition: {line}");
            }
            Some(line) => {
                assert_eq!(json_field(line, "ok"), Some("false"), "{line}");
                assert_eq!(json_field(line, "kind"), Some("unknown_video"), "{line}");
            }
            None => {}
        }
    }

    // The serving stats must show the storm was deduplicated: one miss,
    // everyone else a hit or a coalesced waiter.
    let stats = roundtrip(&mut probe, "STATS");
    let misses: u64 = json_field(&stats, "misses").and_then(|v| v.parse().ok()).expect("misses");
    let hits: u64 = json_field(&stats, "hits").and_then(|v| v.parse().ok()).expect("hits");
    let coalesced: u64 =
        json_field(&stats, "coalesced").and_then(|v| v.parse().ok()).expect("coalesced");
    assert_eq!(misses, 1, "identical queries must compute once: {stats}");
    assert_eq!(hits + coalesced, 7, "the other seven attach or hit: {stats}");
    let queued: u64 = json_field(&stats, "queued").and_then(|v| v.parse().ok()).expect("queued");
    assert_eq!(queued, 0, "no query is waiting for admission at rest: {stats}");

    // EXPLAIN ANALYZE over the wire: executes the query and returns both the
    // plan and the rendered span tree.
    let analyzed = roundtrip(&mut probe, &format!("EXPLAIN ANALYZE {QUERY}"));
    assert_eq!(json_field(&analyzed, "ok"), Some("true"), "{analyzed}");
    assert_eq!(json_field(&analyzed, "kind"), Some("explain_analyze"), "{analyzed}");
    let trace = json_string_field(&analyzed, "trace").expect("trace field");
    assert!(trace.starts_with("EXPLAIN ANALYZE"), "trace must render the span tree: {trace}");
    for stage in ["parse", "plan", "admission wait", "total:"] {
        assert!(trace.contains(stage), "trace must include the {stage:?} stage: {trace}");
    }

    // METRICS: the Prometheus exposition arrives JSON-escaped on one line and
    // must cross-check against the STATS the storm produced above.
    let metrics = roundtrip(&mut probe, "METRICS");
    assert_eq!(json_field(&metrics, "kind"), Some("metrics"), "{metrics}");
    let exposition = json_string_field(&metrics, "exposition").expect("exposition field");
    for family in [
        "blazeit_serving_cache_hits_total",
        "blazeit_serving_cache_misses_total",
        "blazeit_serving_coalesced_total",
        "blazeit_serving_queries_total",
        "blazeit_serving_admission_wait_seconds",
        "blazeit_serving_admission_queue_depth",
        "blazeit_stream_frames_ingested_total",
        "blazeit_store_reads_total",
        "blazeit_pool_workers",
    ] {
        assert!(
            exposition.contains(&format!("# TYPE {family} ")),
            "exposition missing family {family}:\n{exposition}"
        );
    }
    assert!(
        exposition.contains("blazeit_serving_cache_misses_total 1"),
        "registry must agree with STATS (one miss):\n{exposition}"
    );
    // Valid text exposition: every non-comment line is `name[{labels}] value`.
    for line in exposition.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (_, value) = line.rsplit_once(' ').expect("metric lines carry a value");
        assert!(value.parse::<f64>().is_ok(), "non-numeric value in line: {line}");
    }

    // Graceful shutdown: the command is acknowledged, the process exits 0.
    assert_eq!(roundtrip(&mut probe, "SHUTDOWN"), "{\"ok\":true,\"kind\":\"shutdown\"}");
    let status = server.child.wait().expect("wait for server exit");
    assert!(status.success(), "server must exit cleanly, got {status:?}");
}
