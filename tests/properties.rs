//! Property-based tests (proptest) on the core data structures and invariants.

use blazeit::core::stats::{normal_critical_value, normal_ppf, RunningStats};
use blazeit::detect::{count_classes, Detection};
use blazeit::frameql::parse_query;
use blazeit::nn::features::Standardizer;
use blazeit::prelude::*;
use blazeit::videostore::datasets::occupancy_to_mean_concurrent;
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BoundingBox> {
    (0.0f32..1000.0, 0.0f32..1000.0, 1.0f32..500.0, 1.0f32..500.0)
        .prop_map(|(x, y, w, h)| BoundingBox::new(x, y, x + w, y + h))
}

proptest! {
    // ------------------------------------------------------------------ geometry ----
    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
    }

    #[test]
    fn iou_with_self_is_one(a in arb_bbox()) {
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn intersection_area_never_exceeds_either_box(a in arb_bbox(), b in arb_bbox()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.area() <= a.area() + 1e-3);
            prop_assert!(i.area() <= b.area() + 1e-3);
        }
    }

    #[test]
    fn clamping_keeps_boxes_inside_the_frame(a in arb_bbox()) {
        let clamped = a.clamp_to(1280.0, 720.0);
        prop_assert!(clamped.xmin >= 0.0 && clamped.xmax <= 1280.0);
        prop_assert!(clamped.ymin >= 0.0 && clamped.ymax <= 720.0);
        prop_assert!(clamped.area() <= a.area() + 1e-3);
    }

    // ------------------------------------------------------------------- parser -----
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,120}") {
        // Any outcome is fine as long as it is a clean Result, not a panic.
        let _ = parse_query(&input);
    }

    #[test]
    fn parser_roundtrips_simple_aggregates(
        error in 0.01f64..0.5,
        conf in 50.0f64..99.0,
        class in prop::sample::select(vec!["car", "bus", "boat", "person"]),
    ) {
        let sql = format!(
            "SELECT FCOUNT(*) FROM taipei WHERE class = '{class}' ERROR WITHIN {error} AT CONFIDENCE {conf}%"
        );
        let q = parse_query(&sql).unwrap();
        prop_assert_eq!(q.from.as_single(), Some("taipei"));
        prop_assert!((q.accuracy.error_within.unwrap() - error).abs() < 1e-9);
        prop_assert!((q.accuracy.confidence.unwrap() - conf / 100.0).abs() < 1e-9);
    }

    #[test]
    fn parser_roundtrips_limit_and_gap(limit in 1u64..1000, gap in 0u64..10_000) {
        let sql = format!(
            "SELECT timestamp FROM amsterdam GROUP BY timestamp HAVING SUM(class='car')>=2 LIMIT {limit} GAP {gap}"
        );
        let q = parse_query(&sql).unwrap();
        prop_assert_eq!(q.limit, Some(limit));
        prop_assert_eq!(q.gap, Some(gap));
    }

    // ------------------------------------------------------------------ counting ----
    #[test]
    fn count_vector_totals_match_input(classes in prop::collection::vec(0usize..8, 0..40)) {
        let detections: Vec<Detection> = classes
            .iter()
            .map(|&i| Detection::new(ObjectClass::ALL[i], BoundingBox::new(0.0, 0.0, 10.0, 10.0), 0.9))
            .collect();
        let counts = count_classes(&detections);
        prop_assert_eq!(counts.total(), detections.len());
        for class in ObjectClass::ALL {
            let expected = classes.iter().filter(|&&i| ObjectClass::ALL[i] == class).count();
            prop_assert_eq!(counts.get(class), expected);
            prop_assert_eq!(counts.at_least(class, expected + 1), false);
            if expected > 0 {
                prop_assert!(counts.at_least(class, expected));
            }
        }
    }

    // ------------------------------------------------------------------ statistics --
    #[test]
    fn running_stats_matches_batch_formulas(values in prop::collection::vec(-100.0f64..100.0, 2..200)) {
        let mut rs = RunningStats::new();
        for &v in &values {
            rs.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((rs.mean() - mean).abs() < 1e-6);
        prop_assert!((rs.variance() - var).abs() < 1e-6 * (1.0 + var));
    }

    #[test]
    fn normal_ppf_is_monotone_and_symmetric(p in 0.001f64..0.499) {
        prop_assert!(normal_ppf(p) < normal_ppf(p + 0.5));
        prop_assert!((normal_ppf(p) + normal_ppf(1.0 - p)).abs() < 2e-3);
        prop_assert!(normal_critical_value(1.0 - p) > 0.0);
    }

    #[test]
    fn occupancy_conversion_is_monotone_and_invertible(occ in 0.01f64..0.98) {
        let mean = occupancy_to_mean_concurrent(occ);
        prop_assert!(mean > 0.0);
        let back = 1.0 - (-mean).exp();
        prop_assert!((back - occ).abs() < 1e-9);
        prop_assert!(occupancy_to_mean_concurrent(occ + 0.01) > mean);
    }

    // ---------------------------------------------------------------- standardizer --
    #[test]
    fn standardizer_output_has_zero_mean_unit_variance(
        rows in prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 4), 8..60)
    ) {
        let st = Standardizer::fit(&rows);
        let transformed: Vec<Vec<f32>> = rows.iter().map(|r| st.transform(r)).collect();
        for d in 0..4 {
            let n = transformed.len() as f32;
            let mean: f32 = transformed.iter().map(|r| r[d]).sum::<f32>() / n;
            let var: f32 = transformed.iter().map(|r| r[d] * r[d]).sum::<f32>() / n;
            prop_assert!(mean.abs() < 1e-2, "dim {} mean {}", d, mean);
            // Either the dimension was (near-)constant and zeroed, or it has unit variance.
            prop_assert!(var < 1e-4 || (var - 1.0).abs() < 0.05, "dim {} var {}", d, var);
        }
    }
}

// Deterministic (non-proptest) cross-crate invariants that complement the properties.
#[test]
fn video_ground_truth_is_stable_under_repeated_access() {
    let video = DatasetPreset::GrandCanal.generate_with_frames(DAY_TEST, 1_000).unwrap();
    for f in (0..1_000).step_by(97) {
        assert_eq!(video.ground_truth(f).unwrap(), video.ground_truth(f).unwrap());
        assert_eq!(video.frame(f).unwrap(), video.frame(f).unwrap());
    }
}

#[test]
fn simulated_detection_is_idempotent_per_frame() {
    let engine = BlazeIt::for_preset(DatasetPreset::Rialto, 800).unwrap();
    for f in (0..800).step_by(53) {
        assert_eq!(
            engine.detector().detect(&engine.video(), f),
            engine.detector().detect(&engine.video(), f)
        );
    }
}

// ------------------------------------------------------------------ tracing -----
// `EXPLAIN ANALYZE` runs the whole query under a trace collector, so these
// properties execute real plans. The `proptest!` macro runs a fixed 64 cases —
// far too many for tests that each build a catalog and execute a query — so
// they drive the same deterministic generator directly over a few cases.

/// The exactness contract: the per-span simulated costs of an
/// `EXPLAIN ANALYZE` trace sum — bitwise, not within an epsilon — to the
/// clock's ledger delta, and `QueryResult::cost` is that same sum.
#[test]
fn explain_analyze_costs_sum_exactly_to_the_ledger() {
    use blazeit::detect::clock::CostCategory;
    let strategy = (0.2f64..0.5, prop::sample::select(vec!["car", "bus"]));
    for case in 0..4 {
        let mut rng = proptest::TestRng::deterministic("explain_analyze_costs", case);
        let (error, class) = Strategy::generate(&strategy, &mut rng);
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Taipei, 300).unwrap();
        let sql = format!(
            "EXPLAIN ANALYZE SELECT FCOUNT(*) FROM taipei WHERE class = '{class}' \
             ERROR WITHIN {error} AT CONFIDENCE 90%"
        );
        let result = catalog.session().query(&sql).unwrap();
        let trace = result.output.analyze_trace().expect("analyze attaches a trace");
        let total = trace.total_cost();
        // The collector merged every span ledger back into the ambient tag, so
        // the clock's global breakdown is the identical fold.
        let ledger = catalog.clock().breakdown();
        for category in CostCategory::ALL {
            assert_eq!(
                total.get(category).to_bits(),
                ledger.get(category).to_bits(),
                "category {} diverged: trace {} vs ledger {}",
                category.label(),
                total.get(category),
                ledger.get(category)
            );
            assert_eq!(
                total.get(category).to_bits(),
                result.cost.get(category).to_bits(),
                "result.cost must be the trace total in category {}",
                category.label()
            );
        }
        assert!(
            catalog.clock().charged_tags().iter().all(|&t| t < 1 << 48),
            "no span tag may survive assembly: {:?}",
            catalog.clock().charged_tags()
        );
    }
}

/// The rendered `EXPLAIN ANALYZE` text is a faithful view of the attached
/// trace: one line per span (plus header and total), every label present,
/// and the total line quotes `QueryTrace::total_cost`.
#[test]
fn explain_analyze_rendering_matches_the_attached_trace() {
    let strategy = (1u64..4, 0.25f64..0.5);
    for case in 0..3 {
        let mut rng = proptest::TestRng::deterministic("explain_analyze_rendering", case);
        let (limit, error) = Strategy::generate(&strategy, &mut rng);
        let catalog = Catalog::new();
        catalog.register_preset(DatasetPreset::Amsterdam, 300).unwrap();
        let session = catalog.session();
        let sql = format!(
            "EXPLAIN ANALYZE SELECT timestamp FROM amsterdam GROUP BY timestamp \
             HAVING SUM(class='car')>=1 ERROR WITHIN {error} LIMIT {limit} GAP 50"
        );
        let result = session.query(&sql).unwrap();
        let trace = result.output.analyze_trace().expect("analyze attaches a trace");
        assert!(result.output.explain_plan().is_some(), "analyze keeps the plan");
        let rendered = trace.to_string();
        assert!(rendered.starts_with("EXPLAIN ANALYZE"));
        assert_eq!(
            rendered.lines().count(),
            trace.spans.len() + 2,
            "header + one line per span + total:\n{rendered}"
        );
        for span in &trace.spans {
            assert!(rendered.contains(&span.label), "span {:?} missing:\n{rendered}", span.label);
        }
        let total_line = rendered.lines().last().unwrap();
        assert!(
            total_line.contains(&format!(
                "{:.6} simulated seconds over {} spans",
                trace.total_cost().total(),
                trace.spans.len()
            )),
            "total line must quote total_cost: {total_line}"
        );
    }
}
