//! Integration tests for the durable index store: save/load bit-identity, the
//! zero-cost "BlazeIt (indexed)" acceptance scenario across catalog instances,
//! typed rejection of damaged artifacts with fallback to recompute, and the
//! head-key normalization regression.

use blazeit::nn::{PersistError, ScoreMatrix};
use blazeit::prelude::*;
use std::path::{Path, PathBuf};

/// A fresh per-test scratch directory under the system temp dir (respects
/// `TMPDIR`, which is how CI sandboxes these tests).
fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blazeit-index-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every artifact file (`.bzn` networks, `.bzs` score matrices) under `root`.
fn artifact_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if matches!(path.extension().and_then(|e| e.to_str()), Some("bzn") | Some("bzs"))
            {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn store_catalog(dir: &Path, frames: u64) -> Catalog {
    let catalog = Catalog::with_index_store(dir).expect("open index store");
    catalog.register_preset(DatasetPreset::Taipei, frames).expect("register taipei");
    catalog
}

const FCOUNT_SQL: &str =
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2 AT CONFIDENCE 95%";
const SCRUB_SQL: &str = "SELECT timestamp FROM taipei GROUP BY timestamp \
                         HAVING SUM(class='car') >= 2 LIMIT 5 GAP 60";

// ---------------------------------------------------------------------------------
// The acceptance scenario: a fresh catalog over a previously populated store
// answers repeat queries with zero specialized-inference (and training) cost,
// EXPLAIN reports the disk-warm state, and loaded scores are bit-identical.
// ---------------------------------------------------------------------------------

#[test]
fn fresh_catalog_over_populated_store_pays_zero_specialized_cost() {
    let dir = tmpdir("acceptance");
    let frames = 900u64;

    // First catalog: pays training + full-video scoring, persisting as it goes.
    let catalog1 = store_catalog(&dir, frames);
    assert!(catalog1.index_store().is_some());
    let fcount1 = catalog1
        .session()
        .query(FCOUNT_SQL)
        .unwrap()
        .output
        .aggregate_value()
        .expect("aggregate output");
    let scrub1 = catalog1.session().query(SCRUB_SQL).unwrap().output.frames().unwrap().to_vec();
    let paid = catalog1.clock().breakdown();
    assert!(paid.training > 0.0, "first catalog must pay training");
    assert!(paid.specialized > 0.0, "first catalog must pay specialized inference");

    // Capture the in-memory index for the bit-identity check below.
    let ctx1 = catalog1.context("taipei").unwrap();
    let heads = vec![(ObjectClass::Car, ctx1.default_max_count(ObjectClass::Car, 1))];
    let nn1 = ctx1.specialized_for(&heads).unwrap();
    let scores1 = ctx1.score_index(&nn1).unwrap().probs().to_vec();

    assert!(!artifact_files(&dir).is_empty(), "the store must hold persisted artifacts");
    drop(catalog1);

    // Second catalog, fresh process state: EXPLAIN sees the disk-warm store.
    let catalog2 = store_catalog(&dir, frames);
    let explain = catalog2
        .session()
        .query(&format!("EXPLAIN {FCOUNT_SQL}"))
        .unwrap()
        .output
        .explain_plan()
        .unwrap()
        .to_string();
    assert!(
        explain.contains("caches:   specialized=disk-warm score-index=disk-warm"),
        "EXPLAIN must surface the disk-warm store:\n{explain}"
    );
    // Disk-warm inputs are a free load away, so the planner resolves Algorithm
    // 1's rewrite decision at plan time — just as it does memory-warm.
    let prepared = catalog2.session().prepare(FCOUNT_SQL).unwrap();
    match &prepared.plan().only().strategy {
        PlanStrategy::SpecializedAggregate { decision } => {
            assert_ne!(
                *decision,
                RewriteDecision::AtExecution,
                "disk-warm caches must resolve the rewrite decision at plan time"
            );
        }
        other => panic!("unexpected strategy {other:?}"),
    }
    assert_eq!(catalog2.clock().total(), 0.0, "EXPLAIN (and its warmth probes) stay free");

    // Repeat both queries: zero specialized inference, zero training.
    let fcount2 = catalog2.session().query(FCOUNT_SQL).unwrap().output.aggregate_value().unwrap();
    let scrub2 = catalog2.session().query(SCRUB_SQL).unwrap().output.frames().unwrap().to_vec();
    let warm = catalog2.clock().breakdown();
    assert_eq!(warm.specialized, 0.0, "warm loads must charge zero specialized inference");
    assert_eq!(warm.training, 0.0, "warm loads must charge zero training");

    // Deterministic substrate + bit-identical artifacts ⇒ identical answers.
    assert_eq!(fcount1, fcount2);
    assert_eq!(scrub1, scrub2);

    // Bit-identity: the loaded score index equals both what was stored and what
    // a store-less catalog computes from scratch.
    let ctx2 = catalog2.context("taipei").unwrap();
    assert_eq!(ctx2.specialized_warmth(&heads), CacheWarmth::Memory);
    let nn2 = ctx2.specialized_for(&heads).unwrap();
    let scores2 = ctx2.score_index(&nn2).unwrap().probs().to_vec();
    assert_eq!(
        scores1.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        scores2.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "loaded scores must be bit-identical to the stored ones"
    );

    let fresh = Catalog::new();
    fresh.register_preset(DatasetPreset::Taipei, frames).unwrap();
    let ctx3 = fresh.context("taipei").unwrap();
    let nn3 = ctx3.specialized_for(&heads).unwrap();
    let scores3 = ctx3.score_index(&nn3).unwrap().probs().to_vec();
    assert_eq!(
        scores2.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        scores3.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "loaded scores must be bit-identical to fresh computation"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// Typed rejection of damaged artifacts (direct store API).
// ---------------------------------------------------------------------------------

#[test]
fn damaged_artifacts_are_rejected_with_typed_errors() {
    let dir = tmpdir("typed-errors");
    let store = IndexStore::open(&dir).unwrap();
    let scores = ScoreMatrix::from_raw(2, vec![3], vec![0.5, 0.3, 0.2, 0.1, 0.2, 0.7]).unwrap();
    store.store_scores("vid", "key", &scores).unwrap();
    let path = store.scores_path("vid", "key");
    let good = std::fs::read(&path).unwrap();

    // Pristine artifact loads bit-identically.
    let loaded = store.load_scores("vid", "key").unwrap().expect("artifact exists");
    assert_eq!(loaded, scores);
    // Absent artifact is None, not an error.
    assert_eq!(store.load_scores("vid", "other-key").unwrap(), None);

    // Truncated file → Corrupt.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    match store.load_scores("vid", "key") {
        Err(StoreError::Invalid { source: PersistError::Corrupt(_), .. }) => {}
        other => panic!("truncated file: expected Invalid/Corrupt, got {other:?}"),
    }

    // Flipped payload byte → Corrupt (checksum mismatch).
    let mut flipped = good.clone();
    let mid = flipped.len() - 9; // inside the payload, before the trailing checksum
    flipped[mid] ^= 0xFF;
    std::fs::write(&path, &flipped).unwrap();
    match store.load_scores("vid", "key") {
        Err(StoreError::Invalid { source: PersistError::Corrupt(msg), .. }) => {
            assert!(msg.contains("checksum"), "{msg}");
        }
        other => panic!("flipped byte: expected Invalid/Corrupt, got {other:?}"),
    }

    // Bumped format version (byte 5 of the envelope) → VersionMismatch.
    let mut bumped = good.clone();
    bumped[5] = bumped[5].wrapping_add(1);
    std::fs::write(&path, &bumped).unwrap();
    match store.load_scores("vid", "key") {
        Err(StoreError::Invalid {
            source: PersistError::VersionMismatch { found, expected },
            ..
        }) => {
            assert_ne!(found, expected);
        }
        other => panic!("bumped version: expected VersionMismatch, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// Hostile video names cannot escape the store root or collide.
// ---------------------------------------------------------------------------------

#[test]
fn hostile_video_names_stay_inside_the_store_root() {
    let dir = tmpdir("hostile-names");
    let store = IndexStore::open(&dir).unwrap();
    let root = std::fs::canonicalize(store.root()).unwrap();
    for name in ["../escape", "..", ".", "a/b", "a\\b", "/etc/passwd", "", ".hidden", "ok-name"] {
        for path in [store.network_path(name, "k"), store.scores_path(name, "k")] {
            // The artifact path must resolve inside the root even before the
            // file exists: its components may contain no traversal.
            let rel = path.strip_prefix(&root).or_else(|_| path.strip_prefix(store.root()));
            let rel =
                rel.unwrap_or_else(|_| panic!("{} escapes the root for {name:?}", path.display()));
            assert!(
                rel.components().all(|c| matches!(c, std::path::Component::Normal(_))),
                "{} contains traversal components for {name:?}",
                path.display()
            );
        }
        // Round-trip through the sanitized directory still works.
        let scores = ScoreMatrix::from_raw(1, vec![2], vec![0.25, 0.75]).unwrap();
        store.store_scores(name, "k", &scores).unwrap();
        assert_eq!(store.load_scores(name, "k").unwrap(), Some(scores));
    }
    // Distinct hostile names must not collide onto one directory.
    assert_ne!(store.scores_path("a/b", "k"), store.scores_path("a-b", "k"));
    assert_ne!(store.scores_path("..", "k"), store.scores_path(".", "k"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// Fallback: a catalog over a store full of damaged files recomputes (and heals).
// ---------------------------------------------------------------------------------

#[test]
fn corrupted_store_falls_back_to_recompute_and_heals() {
    let dir = tmpdir("fallback");
    let frames = 700u64;

    // Populate, then damage every artifact in place.
    let catalog1 = store_catalog(&dir, frames);
    let fcount1 = catalog1.session().query(FCOUNT_SQL).unwrap().output.aggregate_value().unwrap();
    drop(catalog1);
    let files = artifact_files(&dir);
    assert!(!files.is_empty());
    for file in &files {
        let bytes = std::fs::read(file).unwrap();
        std::fs::write(file, &bytes[..bytes.len() / 3]).unwrap();
    }

    // A fresh catalog must not fail (or serve garbage): it retrains and rescores,
    // charging the clock again, and produces the same answer.
    let catalog2 = store_catalog(&dir, frames);
    let fcount2 = catalog2.session().query(FCOUNT_SQL).unwrap().output.aggregate_value().unwrap();
    let repaid = catalog2.clock().breakdown();
    assert!(repaid.training > 0.0, "damaged store must fall back to retraining");
    assert!(repaid.specialized > 0.0, "damaged store must fall back to rescoring");
    assert_eq!(fcount1, fcount2);
    drop(catalog2);

    // The write-behind healed the store: a third catalog loads for free again.
    let catalog3 = store_catalog(&dir, frames);
    let fcount3 = catalog3.session().query(FCOUNT_SQL).unwrap().output.aggregate_value().unwrap();
    let healed = catalog3.clock().breakdown();
    assert_eq!(healed.specialized, 0.0, "healed store must serve warm loads again");
    assert_eq!(healed.training, 0.0);
    assert_eq!(fcount2, fcount3);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// A configuration change invalidates the store: artifacts trained under one
// BlazeItConfig must never be served to a catalog with a different one.
// ---------------------------------------------------------------------------------

#[test]
fn changed_configuration_never_serves_stale_artifacts() {
    let dir = tmpdir("config-change");
    let frames = 700u64;

    // Populate under the preset's default configuration.
    let catalog1 = store_catalog(&dir, frames);
    catalog1.session().query(FCOUNT_SQL).unwrap();
    drop(catalog1);

    // Same store path, different specialized architecture: the persisted network
    // and scores no longer describe what this catalog would train, so it must
    // retrain from scratch (stale artifacts are keyed away, not served).
    let mut config = BlazeItConfig::for_preset(DatasetPreset::Taipei);
    config.specialized_hidden = vec![24, 12];
    let catalog2 = Catalog::with_index_store(&dir).unwrap();
    catalog2.register_preset_with_config(DatasetPreset::Taipei, frames, config).unwrap();
    let explain2 = catalog2
        .session()
        .query(&format!("EXPLAIN {FCOUNT_SQL}"))
        .unwrap()
        .output
        .explain_plan()
        .unwrap()
        .to_string();
    assert!(
        explain2.contains("caches:   specialized=cold score-index=cold"),
        "a different architecture must plan cold:\n{explain2}"
    );
    catalog2.session().query(FCOUNT_SQL).unwrap();
    let paid = catalog2.clock().breakdown();
    assert!(paid.training > 0.0, "changed config must retrain, not reuse stale weights");
    assert!(paid.specialized > 0.0, "changed config must rescore");
    drop(catalog2);

    // A detector-threshold change alters the *labels* (and hence the trained
    // weights) while leaving the network architecture identical — the score
    // key's weights fingerprint is what keeps these apart.
    let mut config = BlazeItConfig::for_preset(DatasetPreset::Taipei);
    config.detection_threshold = 0.5;
    let catalog2b = Catalog::with_index_store(&dir).unwrap();
    catalog2b.register_preset_with_config(DatasetPreset::Taipei, frames, config).unwrap();
    catalog2b.session().query(FCOUNT_SQL).unwrap();
    let paid = catalog2b.clock().breakdown();
    assert!(paid.training > 0.0, "changed detector threshold must retrain");
    assert!(paid.specialized > 0.0, "weights differ, so scores must be recomputed");
    drop(catalog2b);

    // The original configuration still loads its own artifacts for free.
    let catalog3 = store_catalog(&dir, frames);
    catalog3.session().query(FCOUNT_SQL).unwrap();
    assert_eq!(catalog3.clock().breakdown().training, 0.0);
    assert_eq!(catalog3.clock().breakdown().specialized, 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// Head-key normalization regression: (class, 0) and (class, 1) are the same
// network and must share one cache entry (the head is clamped before keying).
// ---------------------------------------------------------------------------------

#[test]
fn zero_and_one_max_count_heads_share_one_cache_entry() {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 700).unwrap();
    let ctx = catalog.context("taipei").unwrap();

    let nn_zero = ctx.specialized_for(&[(ObjectClass::Car, 0)]).unwrap();
    let trained_once = catalog.clock().breakdown().training;
    assert!(trained_once > 0.0);

    // The equivalent clamped request must hit the same entry: no retraining,
    // the very same Arc.
    let nn_one = ctx.specialized_for(&[(ObjectClass::Car, 1)]).unwrap();
    assert!(std::sync::Arc::ptr_eq(&nn_zero, &nn_one), "clamp-equivalent heads must share");
    assert_eq!(catalog.clock().breakdown().training, trained_once, "trained exactly once");

    // Every cache probe agrees, in both formulations.
    for heads in [[(ObjectClass::Car, 0)], [(ObjectClass::Car, 1)]] {
        assert!(ctx.has_cached_specialized(&heads));
        assert_eq!(ctx.specialized_warmth(&heads), CacheWarmth::Memory);
        assert!(ctx.cached_specialized(&heads).is_some());
    }

    // And the score index keyed through the same normalization is shared too.
    let index = ctx.score_index(&nn_zero).unwrap();
    assert!(ctx.has_cached_score_index(&[(ObjectClass::Car, 0)]));
    assert!(ctx.has_cached_score_index(&[(ObjectClass::Car, 1)]));
    let specialized_before = catalog.clock().breakdown().specialized;
    let index_again = ctx.score_index(&nn_one).unwrap();
    assert!(std::sync::Arc::ptr_eq(&index, &index_again));
    assert_eq!(catalog.clock().breakdown().specialized, specialized_before);
}

// ---------------------------------------------------------------------------------
// Head-order insensitivity rides on the same normalization.
// ---------------------------------------------------------------------------------

#[test]
fn head_order_does_not_split_the_cache() {
    let catalog = Catalog::new();
    catalog.register_preset(DatasetPreset::Taipei, 700).unwrap();
    let ctx = catalog.context("taipei").unwrap();

    let ab = ctx.specialized_for(&[(ObjectClass::Car, 3), (ObjectClass::Bus, 0)]).unwrap();
    let trained_once = catalog.clock().breakdown().training;
    let ba = ctx.specialized_for(&[(ObjectClass::Bus, 1), (ObjectClass::Car, 3)]).unwrap();
    assert!(std::sync::Arc::ptr_eq(&ab, &ba));
    assert_eq!(catalog.clock().breakdown().training, trained_once);
}

// ---------------------------------------------------------------------------------
// Size budgeting: LRU eviction tracked through the manifest (satellite of the
// streaming PR).
// ---------------------------------------------------------------------------------

/// A small synthetic score matrix whose encoded artifact is a few KB.
fn small_scores(frames: usize) -> ScoreMatrix {
    let mut m = ScoreMatrix::zeros(frames, vec![4]);
    for f in 0..frames {
        m.row_mut(f).copy_from_slice(&[0.1, 0.2, 0.3, 0.4]);
    }
    m
}

#[test]
fn budgeted_store_evicts_least_recently_used_artifacts() {
    let dir = tmpdir("budget-lru");
    let scores = small_scores(64);
    let artifact_len = blazeit::nn::persist::encode_score_matrix(&scores, "key-a").len() as u64;
    // Room for two artifacts plus slack, never three.
    let budget = artifact_len * 2 + artifact_len / 2;
    let store = IndexStore::open_with_budget(&dir, budget).unwrap();
    assert_eq!(store.budget(), Some(budget));

    store.store_scores("v", "key-a", &scores).unwrap();
    store.store_scores("v", "key-b", &scores).unwrap();
    assert!(store.has_scores("v", "key-a") && store.has_scores("v", "key-b"));
    assert!(store.tracked_bytes() <= budget);

    // Touch A (a load is a use), then store C: the LRU victim must be B.
    assert!(store.load_scores("v", "key-a").unwrap().is_some());
    store.store_scores("v", "key-c", &scores).unwrap();
    assert!(store.has_scores("v", "key-a"), "recently used artifact survived");
    assert!(!store.has_scores("v", "key-b"), "least recently used artifact evicted");
    assert!(store.has_scores("v", "key-c"));
    assert!(store.tracked_bytes() <= budget);

    // An evicted artifact reads as a clean miss, not an error.
    assert_eq!(store.load_scores("v", "key-b").unwrap(), None);

    // The manifest (not mtimes) carries recency across reopen: touch C, reopen,
    // store D — the victim is A.
    assert!(store.load_scores("v", "key-c").unwrap().is_some());
    drop(store);
    let store = IndexStore::open_with_budget(&dir, budget).unwrap();
    store.store_scores("v", "key-d", &scores).unwrap();
    assert!(!store.has_scores("v", "key-a"), "A was least recent after reopen");
    assert!(store.has_scores("v", "key-c") && store.has_scores("v", "key-d"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unevictable_overflow_is_a_typed_error_and_writes_nothing() {
    let dir = tmpdir("budget-overflow");
    let store = IndexStore::open_with_budget(&dir, 64).unwrap();
    let scores = small_scores(64);
    let err = store.store_scores("v", "too-big", &scores).unwrap_err();
    match &err {
        StoreError::BudgetExceeded { needed, budget, .. } => {
            assert!(*needed > *budget);
            assert_eq!(*budget, 64);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert!(!store.has_scores("v", "too-big"), "a rejected artifact leaves no file");
    assert_eq!(store.tracked_bytes(), 0);

    // A catalog over a too-small budget degrades to in-memory caching instead
    // of failing queries (write-behind swallows the typed error).
    let catalog = Catalog::with_index_store_budget(dir.join("tiny"), 64).unwrap();
    catalog.register_preset(DatasetPreset::Taipei, 600).unwrap();
    let result = catalog.session().query(FCOUNT_SQL).unwrap();
    assert!(result.output.aggregate_value().is_some());
    assert!(artifact_files(&dir.join("tiny")).is_empty(), "nothing fit the 64-byte budget");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budgeted_store_adopts_an_unmanifested_store_and_trims_it() {
    let dir = tmpdir("budget-adopt");
    let scores = small_scores(64);
    let artifact_len = blazeit::nn::persist::encode_score_matrix(&scores, "key-a").len() as u64;
    {
        // Populate without any budget (no manifest is written).
        let store = IndexStore::open(&dir).unwrap();
        store.store_scores("v", "key-a", &scores).unwrap();
        store.store_scores("v", "key-b", &scores).unwrap();
        store.store_scores("v", "key-c", &scores).unwrap();
    }
    // Reopening with a two-artifact budget reconciles and evicts down to it.
    let store = IndexStore::open_with_budget(&dir, artifact_len * 2).unwrap();
    let remaining = ["key-a", "key-b", "key-c"].iter().filter(|k| store.has_scores("v", k)).count();
    assert_eq!(remaining, 2, "adoption trimmed the store to the budget");
    assert!(store.tracked_bytes() <= artifact_len * 2);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// Labeled-set persistence: a fresh catalog over a populated store skips the
// offline annotation pass (satellite of the streaming PR).
// ---------------------------------------------------------------------------------

#[test]
fn labeled_annotations_persist_across_catalogs() {
    let dir = tmpdir("labeled");
    let frames = 700u64;
    let (first_train, first_heldout, first_cost) = {
        let catalog = store_catalog(&dir, frames);
        let labeled_ctx = catalog.context("taipei").unwrap();
        let labeled = labeled_ctx.labeled();
        assert!(
            labeled.annotation_cost_secs() > 0.0,
            "the first registration runs the offline detector"
        );
        (labeled.train().clone(), labeled.heldout().clone(), labeled.annotation_cost_secs())
    };
    assert!(first_cost > 0.0);

    // A fresh catalog over the same store loads the annotations instead of
    // re-running the detector, and gets the exact same labeled set.
    let catalog = store_catalog(&dir, frames);
    let labeled_ctx = catalog.context("taipei").unwrap();
    let labeled = labeled_ctx.labeled();
    assert_eq!(labeled.annotation_cost_secs(), 0.0, "annotations came from the store");
    assert_eq!(labeled.train(), &first_train);
    assert_eq!(labeled.heldout(), &first_heldout);

    // The key pins the labeling identity: a different detector threshold must
    // miss and re-annotate (stale annotations are never served).
    let mut config = BlazeItConfig::for_preset(DatasetPreset::Taipei);
    config.detection_threshold = 0.5;
    let other = Catalog::with_index_store(&dir).unwrap();
    other.register_preset_with_config(DatasetPreset::Taipei, frames, config).unwrap();
    let relabeled_ctx = other.context("taipei").unwrap();
    let relabeled = relabeled_ctx.labeled();
    assert!(relabeled.annotation_cost_secs() > 0.0, "changed detector => fresh annotation");
    assert_ne!(relabeled.train(), &first_train);

    // A corrupted annotation artifact falls back to a rebuild (and heals).
    let store = IndexStore::open(&dir).unwrap();
    let labeled_files: Vec<PathBuf> = {
        let mut out = Vec::new();
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap().flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "bzl") {
                    out.push(p);
                }
            }
        }
        out
    };
    assert!(!labeled_files.is_empty(), "annotations were persisted as .bzl artifacts");
    for file in &labeled_files {
        std::fs::write(file, b"garbage").unwrap();
    }
    drop(store);
    let catalog = store_catalog(&dir, frames);
    let healed_ctx = catalog.context("taipei").unwrap();
    let healed = healed_ctx.labeled();
    assert!(healed.annotation_cost_secs() > 0.0, "corrupt annotations => rebuild");
    assert_eq!(healed.train(), &first_train);
    let _ = std::fs::remove_dir_all(&dir);
}
