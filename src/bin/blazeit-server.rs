//! `blazeit-server` — the concurrent FrameQL query server.
//!
//! Serves a shared [`Catalog`] over TCP through the serving layer
//! ([`blazeit::core::serve`]): every connection gets its own
//! [`ServerSession`], identical in-flight queries coalesce onto one
//! computation, completed answers are cached per video data generation, and
//! admission control bounds concurrent load. The wire protocol is
//! line-oriented: one command in per line, one JSON object out per line
//! (documented in `docs/server.md`).
//!
//! ```text
//! blazeit-server [--port N] [--videos a,b,..] [--frames N] [--capacity X]
//! ```
//!
//! Commands: a FrameQL query (anything not listed below), `PING`, `STATS`,
//! `METRICS` (the process-wide registry in Prometheus text exposition format,
//! JSON-escaped onto one line), `SHUTDOWN` (acknowledges, then drains every
//! open connection and exits).
//! On startup the server prints `listening on 127.0.0.1:<port>` to stdout.

use blazeit::core::sync::{AtomicU64, Mutex, Ordering};
use blazeit::prelude::*;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a JSON number that is valid JSON even for non-finite floats.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// One successful query result as a JSON line.
fn render_result(result: &QueryResult) -> String {
    let common = format!(
        "\"simulated_secs\":{},\"wall_secs\":{}",
        json_num(result.runtime_secs()),
        json_num(result.wall_secs)
    );
    match &result.output {
        QueryOutput::Aggregate { value, standard_error, detection_calls, .. }
        | QueryOutput::CatalogAggregate { value, standard_error, detection_calls, .. } => {
            let se = standard_error.map(json_num).unwrap_or_else(|| "null".to_string());
            format!(
                "{{\"ok\":true,\"kind\":\"aggregate\",\"value\":{},\"standard_error\":{se},\
                 \"detection_calls\":{detection_calls},{common}}}",
                json_num(*value)
            )
        }
        QueryOutput::Frames { frames, detection_calls } => {
            let list: Vec<String> = frames.iter().map(|f| f.to_string()).collect();
            format!(
                "{{\"ok\":true,\"kind\":\"frames\",\"frames\":[{}],\
                 \"detection_calls\":{detection_calls},{common}}}",
                list.join(",")
            )
        }
        QueryOutput::CatalogFrames { frames, detection_calls } => {
            let list: Vec<String> = frames
                .iter()
                .map(|f| format!("[\"{}\",{}]", json_escape(&f.video), f.frame))
                .collect();
            format!(
                "{{\"ok\":true,\"kind\":\"frames\",\"sourced_frames\":[{}],\
                 \"detection_calls\":{detection_calls},{common}}}",
                list.join(",")
            )
        }
        QueryOutput::Rows { rows, detection_calls } => format!(
            "{{\"ok\":true,\"kind\":\"rows\",\"count\":{},\
             \"detection_calls\":{detection_calls},{common}}}",
            rows.len()
        ),
        QueryOutput::CatalogRows { rows, detection_calls } => format!(
            "{{\"ok\":true,\"kind\":\"rows\",\"count\":{},\
             \"detection_calls\":{detection_calls},{common}}}",
            rows.len()
        ),
        QueryOutput::Explain { plan } => format!(
            "{{\"ok\":true,\"kind\":\"explain\",\"plan\":\"{}\"}}",
            json_escape(&plan.to_string())
        ),
        QueryOutput::ExplainAnalyze { plan, trace } => format!(
            "{{\"ok\":true,\"kind\":\"explain_analyze\",\"plan\":\"{}\",\"trace\":\"{}\",\
             \"detection_calls\":{},{common}}}",
            json_escape(&plan.to_string()),
            json_escape(&trace.to_string()),
            result.output.detection_calls(),
        ),
    }
}

/// One query error as a JSON line; `kind` is the error variant name.
fn render_error(err: &BlazeItError) -> String {
    let kind = match err {
        BlazeItError::FrameQl(_) => "frameql",
        BlazeItError::Video(_) => "video",
        BlazeItError::Nn(_) => "nn",
        BlazeItError::UnknownVideo { .. } => "unknown_video",
        BlazeItError::Store(_) => "store",
        BlazeItError::Ingest { .. } => "ingest",
        BlazeItError::TaskPanicked { .. } => "task_panicked",
        BlazeItError::Unsupported(_) => "unsupported",
        BlazeItError::Internal(_) => "internal",
    };
    format!("{{\"ok\":false,\"kind\":\"{kind}\",\"error\":\"{}\"}}", json_escape(&err.to_string()))
}

fn render_stats(stats: &ServeStats) -> String {
    format!(
        "{{\"ok\":true,\"kind\":\"stats\",\"hits\":{},\"misses\":{},\"coalesced\":{},\
         \"evicted\":{},\"invalidated\":{},\"queued\":{}}}",
        stats.hits, stats.misses, stats.coalesced, stats.evicted, stats.invalidated, stats.queued
    )
}

/// The metrics registry as one JSON line wrapping the Prometheus text
/// exposition (the line protocol has no multi-line responses, so the
/// exposition travels escaped; clients unescape to get scrape-ready text).
fn render_metrics() -> String {
    format!(
        "{{\"ok\":true,\"kind\":\"metrics\",\"exposition\":\"{}\"}}",
        json_escape(&blazeit::core::obs::prometheus_exposition())
    )
}

/// Shared server state: the serving layer plus the drain flag.
struct Shared {
    server: Server,
    addr: SocketAddr,
    /// 0 = serving, 1 = draining. Flipped by `SHUTDOWN`.
    shutdown: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) != 0
    }

    /// Flips the drain flag and pokes the accept loop awake with a throwaway
    /// connection (accept has no timeout; this is the portable wakeup).
    fn begin_shutdown(&self) {
        self.shutdown.store(1, Ordering::SeqCst);
        drop(TcpStream::connect(self.addr));
    }
}

/// Serves one client connection until it closes, errors, or asks to shut
/// the server down.
fn serve_client(shared: &Shared, stream: TcpStream) {
    let session = shared.server.session();
    let reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let response = match command {
            "PING" => "{\"ok\":true,\"kind\":\"pong\"}".to_string(),
            "STATS" => render_stats(&shared.server.stats()),
            "METRICS" => render_metrics(),
            "SHUTDOWN" => "{\"ok\":true,\"kind\":\"shutdown\"}".to_string(),
            sql => match session.query(sql) {
                Ok(result) => render_result(&result),
                Err(err) => render_error(&err),
            },
        };
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
        if command == "SHUTDOWN" {
            shared.begin_shutdown();
            break;
        }
    }
}

/// Parsed command line.
struct Args {
    port: u16,
    videos: Vec<DatasetPreset>,
    frames_per_day: u64,
    capacity: f64,
}

fn parse_preset(name: &str) -> Option<DatasetPreset> {
    let normalized = name.trim().to_lowercase().replace(['-', '_'], "");
    DatasetPreset::ALL
        .into_iter()
        .find(|p| p.name().to_lowercase().replace(['-', '_'], "") == normalized)
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { port: 0, videos: vec![DatasetPreset::Taipei], frames_per_day: 900, capacity: 64.0 };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--port" => {
                let v = value("--port")?;
                args.port = v.parse().map_err(|_| format!("bad --port {v:?}"))?;
            }
            "--frames" => {
                let v = value("--frames")?;
                args.frames_per_day = v.parse().map_err(|_| format!("bad --frames {v:?}"))?;
            }
            "--capacity" => {
                let v = value("--capacity")?;
                args.capacity = v.parse().map_err(|_| format!("bad --capacity {v:?}"))?;
            }
            "--videos" => {
                let v = value("--videos")?;
                args.videos = v
                    .split(',')
                    .map(|name| {
                        parse_preset(name).ok_or_else(|| format!("unknown preset {name:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.videos.is_empty() {
                    return Err("--videos needs at least one preset".to_string());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let catalog = Catalog::new();
    for preset in &args.videos {
        catalog
            .register_preset(*preset, args.frames_per_day)
            .map_err(|e| format!("registering {}: {e}", preset.name()))?;
    }
    let config = ServeConfig { admission_capacity: args.capacity, ..ServeConfig::default() };
    let server = Server::with_config(Arc::new(catalog), config);

    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| format!("binding 127.0.0.1:{}: {e}", args.port))?;
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();

    let shared = Arc::new(Shared { server, addr, shutdown: AtomicU64::new(0) });
    let clients: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        clients.lock().push(thread::spawn(move || serve_client(&shared, stream)));
    }
    // Drain: every accepted client finishes (or hits its own I/O error)
    // before the process exits.
    for handle in clients.into_inner() {
        let _ = handle.join();
    }
    let stats = shared.server.stats();
    println!(
        "shutdown: hits={} misses={} coalesced={} evicted={} invalidated={}",
        stats.hits, stats.misses, stats.coalesced, stats.evicted, stats.invalidated
    );
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("blazeit-server: {message}");
        std::process::exit(2);
    }
}
