//! # BlazeIt (Rust reproduction)
//!
//! A from-scratch Rust implementation of **BlazeIt** (Kang, Bailis, Zaharia — VLDB
//! 2019): a declarative video analytics system that optimizes aggregation,
//! cardinality-limited "scrubbing", and content-based selection queries over video by
//! replacing most object-detector invocations with specialized neural networks,
//! control variates, importance sampling, and inferred filters.
//!
//! This crate is a facade re-exporting the public API of the workspace crates:
//!
//! * [`videostore`] — synthetic video substrate (scenes, rendering, Table 3 datasets).
//! * [`detect`] — simulated object detection, tracking, and the simulated-time cost model.
//! * [`nn`] — the from-scratch NN library and BlazeIt's specialized networks.
//! * [`frameql`] — the FrameQL declarative query language.
//! * [`core`] — the BlazeIt engine: optimizer, executors, baselines.
//!
//! ## Quickstart
//!
//! ```no_run
//! use blazeit::prelude::*;
//!
//! // Build an engine over the "taipei" stream (generates 3 synthetic days and labels
//! // the first two offline, exactly the paper's setup).
//! let engine = BlazeIt::for_preset(DatasetPreset::Taipei, 18_000).unwrap();
//!
//! // Ask for the average number of cars per frame, within 0.1 at 95% confidence.
//! let result = engine
//!     .query("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%")
//!     .unwrap();
//! println!("{:?} in {:.1} simulated GPU-seconds", result.output, result.runtime_secs());
//! ```

#![warn(missing_docs)]

pub use blazeit_core as core;
pub use blazeit_detect as detect;
pub use blazeit_frameql as frameql;
pub use blazeit_nn as nn;
pub use blazeit_videostore as videostore;

/// The most commonly used types, importable with `use blazeit::prelude::*`.
pub mod prelude {
    pub use blazeit_core::aggregate::SamplingOptions;
    pub use blazeit_core::scrub::ScrubOptions;
    pub use blazeit_core::select::SelectionOptions;
    pub use blazeit_core::{
        baselines, AggregateMethod, BlazeIt, BlazeItConfig, BlazeItError, LabeledSet, QueryOutput,
        QueryResult,
    };
    pub use blazeit_detect::{DetectionMethod, ObjectDetector, SimClock, SimulatedDetector};
    pub use blazeit_frameql::{parse_query, Query, Value};
    pub use blazeit_nn::specialized::{SpecializedHead, SpecializedNN};
    pub use blazeit_videostore::{
        BoundingBox, DatasetPreset, Frame, ObjectClass, Video, VideoConfig, DAY_HELDOUT, DAY_TEST,
        DAY_TRAIN,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let engine = BlazeIt::for_preset(DatasetPreset::NightStreet, 600).unwrap();
        let result = engine
            .query("SELECT FCOUNT(*) FROM night-street WHERE class = 'car' ERROR WITHIN 0.5 AT CONFIDENCE 90%")
            .unwrap();
        assert!(result.output.aggregate_value().unwrap_or(-1.0) >= 0.0);
    }
}
