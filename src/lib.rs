//! # BlazeIt (Rust reproduction)
//!
//! A from-scratch Rust implementation of **BlazeIt** (Kang, Bailis, Zaharia — VLDB
//! 2019): a declarative video analytics system that optimizes aggregation,
//! cardinality-limited "scrubbing", and content-based selection queries over video by
//! replacing most object-detector invocations with specialized neural networks,
//! control variates, importance sampling, and inferred filters.
//!
//! This crate is a facade re-exporting the public API of the workspace crates:
//!
//! * [`videostore`] — synthetic video substrate (scenes, rendering, Table 3 datasets).
//! * [`detect`] — simulated object detection, tracking, and the simulated-time cost model.
//! * [`nn`] — the from-scratch NN library and BlazeIt's specialized networks.
//! * [`frameql`] — the FrameQL declarative query language.
//! * [`core`] — the BlazeIt engine: optimizer, executors, baselines, the durable
//!   index store, and the streaming layer ([`core::stream`]: live ingestion with
//!   incremental score indexes, drift-triggered background refresh, and
//!   continuous queries via `Session::subscribe`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use blazeit::prelude::*;
//!
//! // Register two of the Table 3 streams in one catalog (each gets 3 synthetic days;
//! // the first two are labeled offline, exactly the paper's setup).
//! let catalog = Catalog::new();
//! catalog.register_preset(DatasetPreset::Taipei, 18_000).unwrap();
//! catalog.register_preset(DatasetPreset::Amsterdam, 18_000).unwrap();
//!
//! // Queries route by their FROM clause; EXPLAIN renders the chosen plan for free.
//! let session = catalog.session();
//! let plan = session
//!     .query("EXPLAIN SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1")
//!     .unwrap();
//! println!("{}", plan.output.explain_plan().unwrap());
//!
//! // Prepare → inspect / override → run.
//! let result = session
//!     .prepare("SELECT FCOUNT(*) FROM amsterdam WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%")
//!     .unwrap()
//!     .with_budget(5_000)
//!     .run()
//!     .unwrap();
//! println!("{:?} in {:.1} simulated GPU-seconds", result.output, result.runtime_secs());
//! ```

#![warn(missing_docs)]

pub use blazeit_core as core;
pub use blazeit_detect as detect;
pub use blazeit_frameql as frameql;
pub use blazeit_nn as nn;
pub use blazeit_videostore as videostore;

/// The most commonly used types, importable with `use blazeit::prelude::*`.
pub mod prelude {
    pub use blazeit_core::aggregate::SamplingOptions;
    pub use blazeit_core::scrub::ScrubOptions;
    pub use blazeit_core::select::SelectionOptions;
    pub use blazeit_core::{
        baselines, AggregateMethod, BlazeIt, BlazeItConfig, BlazeItError, CacheStatus, CacheWarmth,
        Catalog, DriftConfig, HealthReport, HealthState, IndexStore, IngestReport, LabeledSet,
        MergeSemantics, PlanStrategy, PreparedQuery, QueryOutput, QueryPlan, QueryResult,
        QueryTrace, RefreshReport, RefreshState, RetrainHealth, RetryPolicy, RewriteDecision,
        ServeConfig, ServeStats, Server, ServerSession, Session, SourcedFrame, SourcedRow,
        StoreError, StreamSource, StreamStatus, StreamUpdate, Subscription, TraceSpan,
        VideoAggregate, VideoContext, VideoPlan,
    };
    pub use blazeit_detect::{DetectionMethod, ObjectDetector, SimClock, SimulatedDetector};
    pub use blazeit_frameql::{parse_query, Query, Value};
    pub use blazeit_nn::parallel::TaskPanic;
    pub use blazeit_nn::specialized::{SpecializedHead, SpecializedNN};
    pub use blazeit_videostore::{
        BoundingBox, DatasetPreset, Frame, ObjectClass, Video, VideoConfig, DAY_HELDOUT, DAY_TEST,
        DAY_TRAIN,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let engine = BlazeIt::for_preset(DatasetPreset::NightStreet, 600).unwrap();
        let result = engine
            .query("SELECT FCOUNT(*) FROM night-street WHERE class = 'car' ERROR WITHIN 0.5 AT CONFIDENCE 90%")
            .unwrap();
        assert!(result.output.aggregate_value().unwrap_or(-1.0) >= 0.0);
    }
}
